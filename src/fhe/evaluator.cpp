#include "fhe/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "fhe/simd/simd.h"

namespace sp::fhe {
namespace {

void check_scale_close(double a, double b) {
  sp::check(std::abs(a - b) <= 1e-6 * std::max(a, b),
            "Evaluator: scale mismatch between operands");
}

/// Rescale-style exact division step shared by rescale (divisor = chain
/// prime) and key-switch mod-down (divisor = special prime): given the
/// divisor's residue row, subtract its centered lift from every remaining
/// row and multiply by divisor^-1 mod that row's prime.
void div_exact_rows(RnsPoly& poly, const u64* divisor_row, const Modulus& divisor_mod,
                    const std::vector<u64>& inv_mod_rows) {
  const std::size_t n = poly.n();
  const u64 d = divisor_mod.value();
  sp::parallel_for(0, static_cast<std::size_t>(poly.row_count()), [&](std::size_t jj) {
    const int j = static_cast<int>(jj);
    const Modulus& m = poly.row_mod(j);
    const u64 inv = inv_mod_rows[jj];
    const u64 inv_shoup = shoup_precompute(inv, m.value());
    u64* r = poly.row(j);
    for (std::size_t i = 0; i < n; ++i) {
      const u64 x = divisor_row[i];
      const std::int64_t centered =
          x > d / 2 ? static_cast<std::int64_t>(x) - static_cast<std::int64_t>(d)
                    : static_cast<std::int64_t>(x);
      const u64 lift = m.from_signed(centered);
      r[i] = mul_shoup(m.sub(r[i], lift), inv, inv_shoup, m.value());
    }
  });
}

}  // namespace

void Evaluator::drop_to_level(Ciphertext& ct, int level) const {
  sp::check(level >= 0 && level <= ct.level(), "drop_to_level: bad target level");
  while (ct.level() > level)
    for (auto& part : ct.parts) part.drop_last_q();
}

void Evaluator::match_levels(Ciphertext& a, Ciphertext& b) const {
  if (a.level() > b.level())
    drop_to_level(a, b.level());
  else if (b.level() > a.level())
    drop_to_level(b, a.level());
}

Ciphertext Evaluator::add(const Ciphertext& a, const Ciphertext& b) const {
  sp::check(a.q_count() == b.q_count(), "add: level mismatch");
  sp::check(a.size() == b.size(), "add: size mismatch");
  check_scale_close(a.scale, b.scale);
  Ciphertext out = a;
  for (int i = 0; i < out.size(); ++i) out.parts[static_cast<std::size_t>(i)].add_inplace(b.parts[static_cast<std::size_t>(i)]);
  ++counters.adds;
  return out;
}

Ciphertext Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const {
  sp::check(a.q_count() == b.q_count(), "sub: level mismatch");
  sp::check(a.size() == b.size(), "sub: size mismatch");
  check_scale_close(a.scale, b.scale);
  Ciphertext out = a;
  for (int i = 0; i < out.size(); ++i) out.parts[static_cast<std::size_t>(i)].sub_inplace(b.parts[static_cast<std::size_t>(i)]);
  ++counters.adds;
  return out;
}

void Evaluator::negate_inplace(Ciphertext& ct) const {
  for (auto& p : ct.parts) p.negate_inplace();
}

void Evaluator::add_inplace(Ciphertext& a, const Ciphertext& b) const {
  sp::check(a.q_count() == b.q_count(), "add_inplace: level mismatch");
  check_scale_close(a.scale, b.scale);
  const int common = std::min(a.size(), b.size());
  for (int i = 0; i < common; ++i)
    a.parts[static_cast<std::size_t>(i)].add_inplace(b.parts[static_cast<std::size_t>(i)]);
  // The shorter operand is implicitly zero in its missing (quadratic) part.
  for (int i = common; i < b.size(); ++i)
    a.parts.push_back(b.parts[static_cast<std::size_t>(i)]);
  ++counters.adds;
}

void Evaluator::add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const {
  sp::check(ct.q_count() == pt.q_count(), "add_plain: level mismatch");
  check_scale_close(ct.scale, pt.scale);
  ct.parts[0].add_inplace(pt.poly);
  ++counters.adds;
}

void Evaluator::multiply_plain_inplace(Ciphertext& ct, const Plaintext& pt) const {
  sp::check(ct.q_count() == pt.q_count(), "multiply_plain: level mismatch");
  for (auto& part : ct.parts) part.mul_inplace(pt.poly);
  ct.scale *= pt.scale;
  ++counters.plain_mults;
}

Ciphertext Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const {
  sp::check(a.size() == 2 && b.size() == 2, "multiply: operands must have 2 parts");
  sp::check(a.q_count() == b.q_count(), "multiply: level mismatch");

  sp::check(a.parts[0].is_ntt() && b.parts[0].is_ntt(), "multiply: requires NTT form");

  Ciphertext out;
  out.scale = a.scale * b.scale;
  RnsPoly p0 = a.parts[0];
  RnsPoly cross = a.parts[0];
  RnsPoly cross2 = a.parts[1];
  RnsPoly p2 = a.parts[1];
  // The four cross-term products are independent; dispatching their
  // (product x row x tile) units in one parallel region keeps the pool fed
  // even at short chain lengths, where per-row parallelism alone stalls.
  struct Prod {
    RnsPoly* dst;
    const RnsPoly* src;
  };
  const Prod prods[4] = {{&p0, &b.parts[0]},
                         {&cross, &b.parts[1]},
                         {&cross2, &b.parts[0]},
                         {&p2, &b.parts[1]}};
  const std::size_t rows = static_cast<std::size_t>(p0.row_count());
  const std::size_t n = p0.n();
  constexpr std::size_t kTile = 4096;
  const std::size_t tiles = n >= kTile ? n / kTile : 1;
  const std::size_t len = n / tiles;
  const simd::Kernels& k = simd::kernels();
  sp::parallel_for(0, 4 * rows * tiles, [&](std::size_t u) {
    const Prod& p = prods[u / (rows * tiles)];
    const std::size_t rem = u % (rows * tiles);
    const int r = static_cast<int>(rem / tiles);
    const std::size_t off = (rem % tiles) * len;
    const Modulus& m = p.dst->row_mod(r);
    k.mul_mod(p.dst->row(r) + off, p.src->row(r) + off, len, m.value(), m.ratio_hi(),
              m.ratio_lo());
  });
  cross.add_inplace(cross2);
  out.parts.push_back(std::move(p0));
  out.parts.push_back(std::move(cross));
  out.parts.push_back(std::move(p2));
  ++counters.ct_mults;
  return out;
}

std::vector<RnsPoly> Evaluator::decompose_digits(const RnsPoly& d_coeff) const {
  sp::check(!d_coeff.is_ntt() && !d_coeff.has_special(),
            "decompose_digits: expects coefficient form over chain rows");
  const int l = d_coeff.q_count();
  const int rows = l + 1;  // + special
  const std::size_t n = ctx_->n();

  std::vector<RnsPoly> digits(static_cast<std::size_t>(l));
  for (auto& digit : digits)
    digit = RnsPoly(ctx_, l, /*with_special=*/true, /*ntt_form=*/false);
  // Centered lift of digit i's residue row into the extended basis — every
  // (digit, target row) pair is independent, so the lift parallelizes at
  // l*(l+1) granularity instead of l.
  sp::parallel_for(0, static_cast<std::size_t>(l * rows), [&](std::size_t u) {
    const int i = static_cast<int>(u / static_cast<std::size_t>(rows));
    const int t = static_cast<int>(u % static_cast<std::size_t>(rows));
    const u64 qi = ctx_->q(i).value();
    RnsPoly& digit = digits[static_cast<std::size_t>(i)];
    const u64* src = d_coeff.row(i);
    const Modulus& m = digit.row_mod(t);
    u64* dst = digit.row(t);
    for (std::size_t j = 0; j < n; ++j) {
      const u64 x = src[j];
      const std::int64_t centered =
          x > qi / 2 ? static_cast<std::int64_t>(x) - static_cast<std::int64_t>(qi)
                     : static_cast<std::int64_t>(x);
      dst[j] = m.from_signed(centered);
    }
  });
  // All l*(l+1) forward NTTs go out as one batch, so sub-row splitting sees
  // the full row set at once.
  std::vector<RnsPoly*> ptrs;
  ptrs.reserve(digits.size());
  for (auto& digit : digits) ptrs.push_back(&digit);
  RnsPoly::to_ntt_batch(ptrs);
  counters.ntts_forward += static_cast<std::size_t>(l * rows);
  return digits;
}

std::pair<RnsPoly, RnsPoly> Evaluator::apply_kswitch(const std::vector<RnsPoly>& digits,
                                                     const KSwitchKey& key,
                                                     const std::uint32_t* ntt_perm) const {
  const int l = static_cast<int>(digits.size());
  const int rows = l + 1;
  const int key_q = ctx_->q_count();  // key basis chain size
  const std::size_t n = ctx_->n();

  RnsPoly r0(ctx_, l, true, true), r1(ctx_, l, true, true);
  // Each extended-basis row accumulates its digit inner product
  // independently; the digit order inside a row is fixed, so sums (and the
  // final Barrett reductions) are bit-identical for any thread count.
  sp::parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t tt) {
    const int t = static_cast<int>(tt);
    // Ciphertext chain row t maps to key row t; the special row maps to the
    // key's special row (index key_q).
    const int key_row = (t == l) ? key_q : t;
    std::vector<u128> acc0(n, 0), acc1(n, 0);
    for (int i = 0; i < l; ++i) {
      const u64* dg = digits[static_cast<std::size_t>(i)].row(t);
      const auto& kd = key.digits[static_cast<std::size_t>(i)];
      const u64* k0 = kd[0].row(key_row);
      const u64* k1 = kd[1].row(key_row);
      if (ntt_perm) {
        for (std::size_t j = 0; j < n; ++j) {
          const u64 dgj = dg[ntt_perm[j]];
          acc0[j] += static_cast<u128>(dgj) * k0[j];
          acc1[j] += static_cast<u128>(dgj) * k1[j];
        }
      } else {
        for (std::size_t j = 0; j < n; ++j) {
          acc0[j] += static_cast<u128>(dg[j]) * k0[j];
          acc1[j] += static_cast<u128>(dg[j]) * k1[j];
        }
      }
    }
    const Modulus& m = r0.row_mod(t);
    u64* d0 = r0.row(t);
    u64* d1 = r1.row(t);
    for (std::size_t j = 0; j < n; ++j) {
      d0[j] = m.reduce128(acc0[j]);
      d1[j] = m.reduce128(acc1[j]);
    }
  });

  mod_down(r0);
  mod_down(r1);
  return {std::move(r0), std::move(r1)};
}

void Evaluator::mod_down(RnsPoly& r) const {
  sp::check(r.has_special() && r.is_ntt(), "mod_down: expects NTT form over Q ∪ {P}");
  const int l = r.q_count();
  const std::size_t n = ctx_->n();
  r.from_ntt();
  counters.ntts_inverse += static_cast<std::size_t>(l + 1);
  std::vector<u64> p_inv(static_cast<std::size_t>(l));
  for (int j = 0; j < l; ++j) p_inv[static_cast<std::size_t>(j)] = ctx_->p_inv_mod(j);
  // Copy the special row, drop it, then apply the exact-division step.
  std::vector<u64> special_row(r.row(l), r.row(l) + n);
  r.drop_special();
  div_exact_rows(r, special_row.data(), ctx_->special(), p_inv);
  r.to_ntt();
  counters.ntts_forward += static_cast<std::size_t>(l);
}

std::pair<RnsPoly, RnsPoly> Evaluator::key_switch(const RnsPoly& d_coeff,
                                                  const KSwitchKey& key) const {
  return apply_kswitch(decompose_digits(d_coeff), key, /*ntt_perm=*/nullptr);
}

void Evaluator::relinearize_inplace(Ciphertext& ct, const KSwitchKey& rk) const {
  sp::check(ct.size() == 3, "relinearize: ciphertext must have 3 parts");
  RnsPoly d = ct.parts[2];
  d.from_ntt();
  counters.ntts_inverse += static_cast<std::size_t>(d.row_count());
  auto [r0, r1] = key_switch(d, rk);
  ct.parts.pop_back();
  ct.parts[0].add_inplace(r0);
  ct.parts[1].add_inplace(r1);
  ++counters.relins;
}

void Evaluator::rescale_inplace(Ciphertext& ct) const {
  sp::check(ct.level() >= 1, "rescale: no levels remaining");
  const int last = ct.q_count() - 1;
  const Modulus& q_last = ctx_->q(last);
  std::vector<u64> inv(static_cast<std::size_t>(last));
  for (int j = 0; j < last; ++j) inv[static_cast<std::size_t>(j)] = ctx_->q_inv_mod(last, j);
  // Inverse and forward conversions of all parts are batched so the NTT
  // scheduler sees parts x rows at once; the exact-division step between them
  // parallelizes per row inside div_exact_rows.
  std::vector<RnsPoly*> parts;
  parts.reserve(ct.parts.size());
  for (auto& part : ct.parts) parts.push_back(&part);
  RnsPoly::from_ntt_batch(parts);
  for (auto& part : ct.parts) {
    std::vector<u64> last_row(part.row(last), part.row(last) + part.n());
    part.drop_last_q();
    div_exact_rows(part, last_row.data(), q_last, inv);
  }
  RnsPoly::to_ntt_batch(parts);
  counters.ntts_inverse += ct.parts.size() * static_cast<std::size_t>(last + 1);
  counters.ntts_forward += ct.parts.size() * static_cast<std::size_t>(last);
  ct.scale /= static_cast<double>(q_last.value());
  ++counters.rescales;
}

u64 Evaluator::galois_element(int steps) const {
  const std::size_t two_n = 2 * ctx_->n();
  const std::size_t half = ctx_->n() / 2;
  const std::size_t r =
      ((static_cast<std::size_t>(steps % static_cast<int>(half)) + half) % half);
  u64 g = 1;
  for (std::size_t k = 0; k < r; ++k) g = (g * 5) % two_n;
  return g;
}

Ciphertext Evaluator::rotate(const Ciphertext& ct, int steps, const GaloisKeys& gk) const {
  sp::check(ct.size() == 2, "rotate: relinearize first");
  const u64 g = galois_element(steps);
  if (g == 1) return ct;
  const auto it = gk.keys.find(g);
  sp::check(it != gk.keys.end(), "rotate: missing Galois key for requested step");

  RnsPoly c0 = ct.parts[0];
  RnsPoly c1 = ct.parts[1];
  RnsPoly::from_ntt_batch({&c0, &c1});
  counters.ntts_inverse += static_cast<std::size_t>(c0.row_count() + c1.row_count());
  RnsPoly c0g = apply_galois(c0, g);
  RnsPoly c1g = apply_galois(c1, g);

  auto [r0, r1] = key_switch(c1g, it->second);
  c0g.to_ntt();
  counters.ntts_forward += static_cast<std::size_t>(c0g.row_count());
  r0.add_inplace(c0g);

  Ciphertext out;
  out.parts.push_back(std::move(r0));
  out.parts.push_back(std::move(r1));
  out.scale = ct.scale;
  ++counters.rotations;
  return out;
}

HoistedDecomposition Evaluator::hoist(const Ciphertext& ct) const {
  sp::check(ct.size() == 2, "hoist: relinearize first");
  HoistedDecomposition h;
  h.src = ct;
  RnsPoly c1 = ct.parts[1];
  c1.from_ntt();
  counters.ntts_inverse += static_cast<std::size_t>(c1.row_count());
  h.digits = decompose_digits(c1);
  return h;
}

Ciphertext Evaluator::rotate_hoisted(const HoistedDecomposition& h, int steps,
                                     const GaloisKeys& gk) const {
  sp::check(!h.digits.empty(), "rotate_hoisted: empty decomposition");
  const u64 g = galois_element(steps);
  if (g == 1) return h.src;
  const auto it = gk.keys.find(g);
  sp::check(it != gk.keys.end(), "rotate_hoisted: missing Galois key for requested step");

  // The decomposition commutes with the automorphism: lifting is
  // coefficient-wise and X -> X^g is a signed coefficient permutation, so
  // permuting the cached NTT-form digits equals decomposing the rotated
  // ciphertext — bit for bit — at zero additional NTTs.
  const std::vector<std::uint32_t>& table = galois_ntt_table(ctx_->n(), g);
  auto [r0, r1] = apply_kswitch(h.digits, it->second, table.data());

  // c0 rotates as the same pure NTT-domain permutation (no NTT round-trip).
  const RnsPoly& c0 = h.src.parts[0];
  const std::size_t n = ctx_->n();
  for (int t = 0; t < r0.row_count(); ++t) {
    const Modulus& m = r0.row_mod(t);
    u64* dst = r0.row(t);
    const u64* src = c0.row(t);
    for (std::size_t j = 0; j < n; ++j) dst[j] = m.add(dst[j], src[table[j]]);
  }

  Ciphertext out;
  out.parts.push_back(std::move(r0));
  out.parts.push_back(std::move(r1));
  out.scale = h.src.scale;
  ++counters.rotations;
  ++counters.hoisted_rotations;
  return out;
}

std::vector<Ciphertext> Evaluator::rotate_hoisted(const Ciphertext& ct,
                                                  const std::vector<int>& steps,
                                                  const GaloisKeys& gk) const {
  const HoistedDecomposition h = hoist(ct);
  std::vector<Ciphertext> out;
  out.reserve(steps.size());
  for (int s : steps) out.push_back(rotate_hoisted(h, s, gk));
  return out;
}

}  // namespace sp::fhe
