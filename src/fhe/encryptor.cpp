#include "fhe/encryptor.h"

#include <random>

#include "common/check.h"

namespace sp::fhe {

namespace {

/// Restricts an RnsPoly over the full chain to its first `q_count` rows.
RnsPoly restrict_rows(const RnsPoly& full, int q_count) {
  sp::check(q_count <= full.q_count(), "restrict_rows: not enough rows");
  RnsPoly out(full.context(), q_count, /*with_special=*/false, full.is_ntt());
  for (int i = 0; i < q_count; ++i) {
    const u64* src = full.row(i);
    std::copy(src, src + full.n(), out.row(i));
  }
  return out;
}

/// Entropy-seeded RNG for the seedless constructor. A single (or even a
/// pair of) random_device draw(s) funneled through one u64 caps the stream
/// at 64 bits of unpredictability — enumerable offline against recorded
/// ciphertexts. Pool eight 32-bit draws through std::seed_seq instead, which
/// spreads them across the engine's full state vector.
sp::Rng entropy_rng() {
  std::random_device rd;
  std::seed_seq seq{rd(), rd(), rd(), rd(), rd(), rd(), rd(), rd()};
  return sp::Rng(seq);
}

}  // namespace

Encryptor::Encryptor(const CkksContext& ctx, PublicKey pk)
    : ctx_(&ctx), pk_(std::move(pk)), rng_(entropy_rng()) {}

Encryptor::Encryptor(const CkksContext& ctx, PublicKey pk, std::uint64_t seed)
    : ctx_(&ctx), pk_(std::move(pk)), rng_(seed) {}

Ciphertext Encryptor::encrypt(const Plaintext& pt) {
  const int L = pt.q_count();
  sp::check(pt.poly.is_ntt(), "Encryptor::encrypt: plaintext must be in NTT form");

  RnsPoly u(ctx_, L, false, false);
  u.sample_ternary(rng_);
  u.to_ntt();
  RnsPoly e0(ctx_, L, false, false), e1(ctx_, L, false, false);
  e0.sample_gaussian(rng_, ctx_->params().noise_stddev);
  e1.sample_gaussian(rng_, ctx_->params().noise_stddev);
  e0.to_ntt();
  e1.to_ntt();

  RnsPoly c0 = restrict_rows(pk_.p0, L);
  c0.mul_inplace(u);
  c0.add_inplace(e0);
  c0.add_inplace(pt.poly);
  RnsPoly c1 = restrict_rows(pk_.p1, L);
  c1.mul_inplace(u);
  c1.add_inplace(e1);

  Ciphertext ct;
  ct.parts.push_back(std::move(c0));
  ct.parts.push_back(std::move(c1));
  ct.scale = pt.scale;
  return ct;
}

Decryptor::Decryptor(const CkksContext& ctx, SecretKey sk)
    : ctx_(&ctx), sk_(std::move(sk)) {}

Plaintext Decryptor::decrypt(const Ciphertext& ct) {
  sp::check(ct.size() >= 2 && ct.size() <= 3, "Decryptor: ciphertext size must be 2 or 3");
  const int L = ct.q_count();
  RnsPoly s = restrict_rows(sk_.s_ntt, L);

  RnsPoly acc = ct.parts[1];
  acc.mul_inplace(s);
  acc.add_inplace(ct.parts[0]);
  if (ct.size() == 3) {
    RnsPoly s2 = s;
    s2.mul_inplace(s);
    RnsPoly t = ct.parts[2];
    t.mul_inplace(s2);
    acc.add_inplace(t);
  }
  return Plaintext{std::move(acc), ct.scale};
}

}  // namespace sp::fhe
