#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fhe/modarith.h"
#include "fhe/ntt.h"

namespace sp::fhe {

/// CKKS encryption parameters.
///
/// The coefficient modulus is a chain of NTT-friendly primes
/// Q = q_0 * ... * q_L plus one "special" prime P used only for hybrid
/// key-switching. q_0 (and usually q_L... in this library q_0) is a wide
/// prime giving decode headroom; the middle primes sit near the scale so
/// rescaling keeps the scale roughly constant.
struct CkksParams {
  std::size_t poly_degree = 8192;           ///< ring dimension N (power of two)
  std::vector<int> q_bits = {60, 40, 40, 40, 40, 40};
  int special_bits = 60;                    ///< key-switching prime P
  double scale = 1099511627776.0;           ///< default Delta = 2^40
  double noise_stddev = 3.2;                ///< discrete Gaussian sigma
  std::uint64_t seed = 42;                  ///< keygen/encryption randomness

  /// Chain sized for `depth` sequential multiplications at ring size `n`:
  /// one 60-bit base prime, `depth` scale-sized primes, one special prime.
  static CkksParams for_depth(std::size_t n, int depth, int scale_bits = 40);

  /// Small parameters for unit tests (N=2048, depth 3).
  static CkksParams test_small();

  /// Benchmark parameters mirroring the paper's SEAL setup: N = 32768 with
  /// a chain deep enough for the deepest PAF (depth 10) plus input scaling.
  static CkksParams paper_paf();
};

/// Precomputed CKKS context: moduli, NTT tables, and the rescale /
/// key-switch / CRT-decode constants shared by all operations.
class CkksContext {
 public:
  explicit CkksContext(const CkksParams& params);

  const CkksParams& params() const { return params_; }
  std::size_t n() const { return params_.poly_degree; }
  std::size_t slot_count() const { return n() / 2; }
  /// Number of Q primes (levels available = q_count - 1 multiplications).
  int q_count() const { return static_cast<int>(q_mods_.size()); }
  double scale() const { return params_.scale; }

  const Modulus& q(int i) const { return q_mods_[static_cast<std::size_t>(i)]; }
  const NttTables& ntt(int i) const { return *q_ntt_[static_cast<std::size_t>(i)]; }
  const Modulus& special() const { return special_mod_; }
  const NttTables& special_ntt() const { return *special_ntt_; }

  /// q_last^{-1} mod q_i where q_last is prime index `last` (rescale).
  u64 q_inv_mod(int last, int i) const;
  /// P^{-1} mod q_i and P mod q_i (key-switch mod-down).
  u64 p_inv_mod(int i) const { return p_inv_mod_[static_cast<std::size_t>(i)]; }
  u64 p_mod(int i) const { return p_mod_[static_cast<std::size_t>(i)]; }

  /// Garner mixed-radix constant: (q_0 * ... * q_{j-1})^{-1} mod q_j.
  u64 garner_inv(int j) const { return garner_inv_[static_cast<std::size_t>(j)]; }

  /// Long-double product q_0 * ... * q_{level} (for decode centering).
  long double q_prod_ld(int level) const;

 private:
  CkksParams params_;
  std::vector<Modulus> q_mods_;
  std::vector<std::unique_ptr<NttTables>> q_ntt_;
  Modulus special_mod_;
  std::unique_ptr<NttTables> special_ntt_;
  std::vector<std::vector<u64>> q_inv_mod_;  // [last][i]
  std::vector<u64> p_inv_mod_, p_mod_;
  std::vector<u64> garner_inv_;
};

}  // namespace sp::fhe
