#include "fhe/keys.h"

#include <mutex>
#include <utility>

#include "common/check.h"

namespace sp::fhe {

KeyGenerator::KeyGenerator(const CkksContext& ctx, std::uint64_t seed)
    : ctx_(&ctx), rng_(seed) {
  const int L = ctx_->q_count();
  sk_.s_coeff = RnsPoly(ctx_, L, /*with_special=*/true, /*ntt_form=*/false);
  sk_.s_coeff.sample_ternary(rng_);
  sk_.s_ntt = sk_.s_coeff;
  sk_.s_ntt.to_ntt();
}

PublicKey KeyGenerator::public_key() {
  const int L = ctx_->q_count();
  RnsPoly a(ctx_, L, false, true);
  a.sample_uniform(rng_);
  RnsPoly e(ctx_, L, false, false);
  e.sample_gaussian(rng_, ctx_->params().noise_stddev);
  e.to_ntt();

  // p0 = -a*s + e (restrict s to the Q basis rows).
  RnsPoly p0 = a;
  for (int i = 0; i < L; ++i) {
    const Modulus& m = p0.row_mod(i);
    u64* r = p0.row(i);
    const u64* s = sk_.s_ntt.row(i);
    for (std::size_t j = 0; j < p0.n(); ++j) r[j] = m.mul(r[j], s[j]);
  }
  p0.negate_inplace();
  p0.add_inplace(e);
  return PublicKey{std::move(p0), std::move(a)};
}

KSwitchKey KeyGenerator::make_kswitch_key(const RnsPoly& w_ntt) {
  const int L = ctx_->q_count();
  sp::check(w_ntt.q_count() == L && w_ntt.has_special() && w_ntt.is_ntt(),
            "make_kswitch_key: w must be NTT over the full basis");
  KSwitchKey key;
  key.digits.resize(static_cast<std::size_t>(L));
  for (int i = 0; i < L; ++i) {
    RnsPoly a(ctx_, L, true, true);
    a.sample_uniform(rng_);
    RnsPoly e(ctx_, L, true, false);
    e.sample_gaussian(rng_, ctx_->params().noise_stddev);
    e.to_ntt();

    RnsPoly k0 = a;
    k0.mul_inplace(sk_.s_ntt);
    k0.negate_inplace();
    k0.add_inplace(e);
    // Add P * w on the i-th prime row only (CRT indicator of q_i).
    const Modulus& m = ctx_->q(i);
    const u64 p_mod_qi = ctx_->p_mod(i);
    u64* r = k0.row(i);
    const u64* w = w_ntt.row(i);
    for (std::size_t j = 0; j < k0.n(); ++j)
      r[j] = m.add(r[j], m.mul(p_mod_qi, w[j]));
    key.digits[static_cast<std::size_t>(i)] = {std::move(k0), std::move(a)};
  }
  return key;
}

KSwitchKey KeyGenerator::relin_key() {
  RnsPoly s2 = sk_.s_ntt;
  s2.mul_inplace(sk_.s_ntt);
  return make_kswitch_key(s2);
}

u64 KeyGenerator::galois_element(int steps) const {
  const std::size_t n = ctx_->n();
  const std::size_t two_n = 2 * n;
  const std::size_t half = n / 2;  // slot count; ord(5) mod 2N
  std::size_t r = ((static_cast<std::size_t>(steps % static_cast<int>(half)) + half) % half);
  u64 g = 1;
  for (std::size_t k = 0; k < r; ++k) g = (g * 5) % two_n;
  return g;
}

GaloisKeys KeyGenerator::galois_keys(const std::vector<int>& steps) {
  GaloisKeys out;
  for (int s : steps) {
    const u64 g = galois_element(s);
    if (out.keys.count(g)) continue;
    RnsPoly sg = apply_galois(sk_.s_coeff, g);
    sg.to_ntt();
    out.keys.emplace(g, make_kswitch_key(sg));
  }
  return out;
}

namespace {

std::vector<std::uint32_t> build_galois_ntt_table(std::size_t n, u64 galois_elt) {
  int log_n = 0;
  while ((std::size_t(1) << log_n) < n) ++log_n;
  const auto brev = [log_n](std::size_t v) {
    std::size_t r = 0;
    for (int b = 0; b < log_n; ++b) {
      r = (r << 1) | (v & 1);
      v >>= 1;
    }
    return r;
  };
  const std::size_t two_n = 2 * n;
  std::vector<std::uint32_t> table(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Slot j evaluates at exponent e = 2*brev(j)+1; X -> X^g sends it to the
    // slot holding exponent e*g mod 2n (odd, since g is odd).
    const std::size_t e = ((2 * brev(j) + 1) * galois_elt) % two_n;
    table[j] = static_cast<std::uint32_t>(brev((e - 1) / 2));
  }
  return table;
}

}  // namespace

const std::vector<std::uint32_t>& galois_ntt_table(std::size_t n, u64 galois_elt) {
  // Rotation-heavy layers re-request the same few (n, g) tables constantly;
  // std::map nodes are stable, so the reference survives later inserts.
  static std::mutex mu;
  static std::map<std::pair<std::size_t, u64>, std::vector<std::uint32_t>> cache;
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find({n, galois_elt});
  if (it == cache.end())
    it = cache.emplace(std::make_pair(n, galois_elt),
                       build_galois_ntt_table(n, galois_elt)).first;
  return it->second;
}

RnsPoly apply_galois_ntt(const RnsPoly& ntt_poly, u64 galois_elt) {
  sp::check(ntt_poly.is_ntt(), "apply_galois_ntt: expects NTT form");
  const std::size_t n = ntt_poly.n();
  const std::vector<std::uint32_t>& table = galois_ntt_table(n, galois_elt);
  RnsPoly out(ntt_poly.context(), ntt_poly.q_count(), ntt_poly.has_special(),
              /*ntt_form=*/true);
  for (int r = 0; r < ntt_poly.row_count(); ++r) {
    const u64* src = ntt_poly.row(r);
    u64* dst = out.row(r);
    for (std::size_t j = 0; j < n; ++j) dst[j] = src[table[j]];
  }
  return out;
}

RnsPoly apply_galois(const RnsPoly& coeff_poly, u64 galois_elt) {
  sp::check(!coeff_poly.is_ntt(), "apply_galois: expects coefficient form");
  const std::size_t n = coeff_poly.n();
  const std::size_t two_n = 2 * n;
  RnsPoly out(coeff_poly.context(), coeff_poly.q_count(), coeff_poly.has_special(),
              /*ntt_form=*/false);
  for (int r = 0; r < coeff_poly.row_count(); ++r) {
    const Modulus& m = coeff_poly.row_mod(r);
    const u64* src = coeff_poly.row(r);
    u64* dst = out.row(r);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (i * galois_elt) % two_n;
      if (idx < n)
        dst[idx] = src[i];
      else
        dst[idx - n] = m.neg(src[i]);  // X^n = -1
    }
  }
  return out;
}

}  // namespace sp::fhe
