#pragma once

#include <cstdint>
#include <vector>

#include "fhe/modarith.h"

namespace sp::fhe {

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs
/// (fixed witness set).
bool is_prime(u64 n);

/// Generates `count` distinct NTT-friendly primes of the given bit size:
/// q ≡ 1 (mod 2n) so that a primitive 2n-th root of unity exists (required
/// for the negacyclic NTT over Z_q[X]/(X^n + 1)). Searches downward from
/// 2^bits, skipping any prime in `exclude`.
std::vector<u64> generate_ntt_primes(int bits, int count, std::size_t n,
                                     const std::vector<u64>& exclude = {});

/// Finds a primitive 2n-th root of unity mod q (q ≡ 1 mod 2n).
u64 find_primitive_root(u64 q, std::size_t two_n);

}  // namespace sp::fhe
