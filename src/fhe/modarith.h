#pragma once

#include <cstdint>

namespace sp::fhe {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Prime modulus (< 2^62) with precomputed Barrett constant for fast
/// reduction of 128-bit products. All residues handled by this class are
/// kept fully reduced in [0, q).
class Modulus {
 public:
  Modulus() = default;
  explicit Modulus(u64 q);

  u64 value() const { return q_; }

  // Barrett constant words, floor(2^128 / q) — consumed by the SIMD
  // elementwise-multiply kernels, which inline the same reduction.
  u64 ratio_hi() const { return ratio_hi_; }
  u64 ratio_lo() const { return ratio_lo_; }

  /// Barrett reduction of a 128-bit value to [0, q).
  u64 reduce128(u128 x) const;

  u64 add(u64 a, u64 b) const {
    u64 r = a + b;
    return r >= q_ ? r - q_ : r;
  }
  u64 sub(u64 a, u64 b) const { return a >= b ? a - b : a + q_ - b; }
  u64 neg(u64 a) const { return a == 0 ? 0 : q_ - a; }
  u64 mul(u64 a, u64 b) const { return reduce128(static_cast<u128>(a) * b); }

  /// a^e mod q by square-and-multiply.
  u64 pow(u64 a, u64 e) const;

  /// Multiplicative inverse (q prime); throws if a == 0.
  u64 inv(u64 a) const;

  /// Reduces a signed 64-bit value into [0, q).
  u64 from_signed(std::int64_t v) const {
    std::int64_t r = v % static_cast<std::int64_t>(q_);
    if (r < 0) r += static_cast<std::int64_t>(q_);
    return static_cast<u64>(r);
  }

  /// Centered representative in (-q/2, q/2].
  std::int64_t to_signed(u64 v) const {
    return v > q_ / 2 ? static_cast<std::int64_t>(v) - static_cast<std::int64_t>(q_)
                      : static_cast<std::int64_t>(v);
  }

 private:
  u64 q_ = 0;
  u64 ratio_hi_ = 0, ratio_lo_ = 0;  // floor(2^128 / q)
};

/// Shoup precomputation for repeated multiplication by a fixed operand w:
/// w_shoup = floor(w * 2^64 / q).
u64 shoup_precompute(u64 w, u64 q);

/// Shoup modular multiplication with lazy reduction: returns x * w mod q in
/// [0, 2q). Requires w < q; x may be any 64-bit value.
inline u64 mul_shoup_lazy(u64 x, u64 w, u64 w_shoup, u64 q) {
  const u64 q_hat = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
  return x * w - q_hat * q;  // wraparound arithmetic is intentional
}

/// Fully-reduced Shoup multiplication.
inline u64 mul_shoup(u64 x, u64 w, u64 w_shoup, u64 q) {
  u64 r = mul_shoup_lazy(x, w, w_shoup, q);
  return r >= q ? r - q : r;
}

}  // namespace sp::fhe
