#pragma once

#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "fhe/context.h"

namespace sp::fhe {

/// Ring element of Z_Q[X]/(X^N + 1) in residue-number-system form: one row
/// of N 64-bit residues per prime. The row set is the first `q_count` chain
/// primes, optionally followed by the special key-switching prime.
///
/// Storage is a single contiguous 64-byte-aligned buffer (row i at offset
/// i*N), so the SIMD kernels always see aligned row starts and whole-element
/// batches stream without per-row pointer chasing.
///
/// A flag tracks whether rows are in coefficient or NTT (evaluation) form;
/// arithmetic helpers check form compatibility.
class RnsPoly {
 public:
  RnsPoly() = default;
  RnsPoly(const CkksContext* ctx, int q_count, bool with_special, bool ntt_form);

  const CkksContext* context() const { return ctx_; }
  int q_count() const { return q_count_; }
  bool has_special() const { return with_special_; }
  int row_count() const { return q_count_ + (with_special_ ? 1 : 0); }
  bool is_ntt() const { return ntt_; }
  std::size_t n() const { return ctx_->n(); }

  u64* row(int i) { return data_.data() + static_cast<std::size_t>(i) * n(); }
  const u64* row(int i) const {
    return data_.data() + static_cast<std::size_t>(i) * n();
  }

  /// Modulus / NTT tables owning row i (special prime for the final row).
  const Modulus& row_mod(int i) const;
  const NttTables& row_ntt(int i) const;

  /// Converts all rows between coefficient and evaluation form.
  void to_ntt();
  void from_ntt();

  /// Converts many polynomials in one batched NTT dispatch: all rows of all
  /// polys feed a single (row x sub-transform) parallel region, so short
  /// chains still saturate the pool. Bit-identical to calling
  /// to_ntt()/from_ntt() per poly. Skips null entries.
  static void to_ntt_batch(const std::vector<RnsPoly*>& polys);
  static void from_ntt_batch(const std::vector<RnsPoly*>& polys);

  // Pointwise arithmetic; operands must have identical row structure & form.
  void add_inplace(const RnsPoly& o);
  void sub_inplace(const RnsPoly& o);
  void negate_inplace();
  void mul_inplace(const RnsPoly& o);  // requires NTT form

  /// Multiplies every row by `v` reduced per prime (v given as an integer).
  /// Per-(v, prime) Shoup constants are memoized process-wide, so repeated
  /// scaling by the same constant skips the 128-bit precompute division.
  void mul_scalar_inplace(u64 v);

  /// Removes the last chain prime row (rescale/mod-drop bookkeeping is done
  /// by the evaluator).
  void drop_last_q();
  /// Removes the special prime row.
  void drop_special();

  /// Fills with the same small signed integer polynomial across all rows.
  void set_from_signed(const std::vector<std::int64_t>& coeffs);

  // Samplers (coefficient form expected; same underlying integer polynomial
  // is embedded into every row).
  void sample_ternary(sp::Rng& rng);
  void sample_gaussian(sp::Rng& rng, double stddev);
  /// Uniform element of R_Q (independent uniform residues per row).
  void sample_uniform(sp::Rng& rng);

  RnsPoly clone() const { return *this; }

 private:
  const CkksContext* ctx_ = nullptr;
  int q_count_ = 0;
  bool with_special_ = false;
  bool ntt_ = false;
  sp::AlignedVec<u64> data_;  // row_count() * n() residues, 64-byte aligned
};

}  // namespace sp::fhe
