#include "fhe/diag_matvec.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/check.h"
#include "common/hash.h"

namespace sp::fhe {

// ------------------------------------------------------------ DiagMatVecPlan --

int DiagMatVecPlan::giant_of(int s, int n1) {
  int g = (s / n1) * n1;
  if (s < 0 && g > s) g -= n1;
  return g;
}

std::vector<int> DiagMatVecPlan::nonzero_steps(const std::vector<double>& weights,
                                               int rows, int cols) {
  sp::check(rows >= 1 && cols >= 1, "DiagMatVecPlan: empty matrix");
  sp::check(weights.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            "DiagMatVecPlan: weights must be row-major rows x cols");
  std::vector<int> steps;
  for (int s = -(rows - 1); s < cols; ++s) {
    const int j_lo = std::max(0, -s);
    const int j_hi = std::min(rows, cols - s);
    bool nonzero = false;
    for (int j = j_lo; j < j_hi && !nonzero; ++j)
      nonzero = weights[static_cast<std::size_t>(j) * cols + (j + s)] != 0.0;
    if (nonzero) steps.push_back(s);
  }
  return steps;
}

DiagMatVecPlan DiagMatVecPlan::group(const std::vector<int>& steps, int rows, int cols,
                                     int n1) {
  sp::check(n1 >= 1, "DiagMatVecPlan: n1 must be >= 1");
  DiagMatVecPlan plan;
  plan.rows = rows;
  plan.cols = cols;
  plan.n1 = n1;
  plan.nonzero_diagonals = static_cast<int>(steps.size());
  std::vector<int> babies, giants;
  int prev_g = 0;
  bool have_g = false;
  for (int s : steps) {
    const int g = giant_of(s, n1);
    const int b = s - g;
    if (b != 0) babies.push_back(b);
    if (g != 0) giants.push_back(g);
    if (!have_g || g != prev_g) {
      ++plan.giant_groups;
      prev_g = g;
      have_g = true;
    }
  }
  const auto uniq = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniq(babies);
  uniq(giants);
  plan.baby_steps = std::move(babies);
  plan.giant_steps = std::move(giants);
  plan.diag_steps = steps;
  return plan;
}

DiagMatVecPlan DiagMatVecPlan::make(const std::vector<double>& weights, int rows,
                                    int cols, int n1) {
  return group(nonzero_steps(weights, rows, cols), rows, cols, n1);
}

std::vector<int> DiagMatVecPlan::steps() const {
  std::vector<int> all = baby_steps;
  all.insert(all.end(), giant_steps.begin(), giant_steps.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<int> DiagMatVecPlan::transpose_steps(const std::vector<int>& steps) {
  std::vector<int> t;
  t.reserve(steps.size());
  for (int s : steps) t.push_back(-s);
  std::sort(t.begin(), t.end());
  return t;
}

int DiagMatVecPlan::best_n1(const std::vector<int>& steps, int rows, int cols) {
  sp::check(!steps.empty(), "DiagMatVecPlan::best_n1: no nonzero diagonals");
  int best = 1;
  int best_rot = -1, best_groups = -1;
  for (int n1 = 1; n1 <= rows + cols; ++n1) {
    const DiagMatVecPlan p = group(steps, rows, cols, n1);
    const int rot = p.rotations();
    if (best_rot < 0 || rot < best_rot ||
        (rot == best_rot && p.giant_groups < best_groups)) {
      best = n1;
      best_rot = rot;
      best_groups = p.giant_groups;
    }
  }
  return best;
}

std::vector<double> extended_diagonal_slots(const std::vector<double>& weights,
                                            int rows, int cols, int s, int g,
                                            std::size_t tile, std::size_t slots) {
  sp::check(tile > 0 && slots % tile == 0 && tile <= slots,
            "extended_diagonal_slots: tile must divide the slot count");
  const int tile_i = static_cast<int>(tile);
  std::vector<double> v(slots, 0.0);
  const int j_lo = std::max(0, -s);
  const int j_hi = std::min(rows, cols - s);
  for (int j = j_lo; j < j_hi; ++j) {
    const double w = weights[static_cast<std::size_t>(j) * cols + (j + s)];
    if (w == 0.0) continue;
    // Pre-rotation by -g: the giant rotation of the block sum moves this
    // entry back to slot j (mod tile), where diagonal s expects it.
    const int at = ((j + g) % tile_i + tile_i) % tile_i;
    for (std::size_t base = 0; base < slots; base += tile)
      v[base + static_cast<std::size_t>(at)] = w;
  }
  return v;
}

// ------------------------------------------------------------ DiagonalMatVec --

DiagonalMatVec::DiagonalMatVec(const Encoder& enc, std::vector<double> weights,
                               int rows, int cols, std::vector<double> bias, int n1,
                               std::size_t tile)
    : enc_(&enc),
      weights_(std::move(weights)),
      bias_(std::move(bias)),
      rows_(rows),
      cols_(cols),
      tile_(tile == 0 ? enc.slot_count() : tile) {
  const std::size_t slots = enc.slot_count();
  sp::check(tile_ <= slots && slots % tile_ == 0,
            "DiagonalMatVec: tile must divide the slot count");
  sp::check_fmt(static_cast<std::size_t>(rows_) <= tile_ &&
                    static_cast<std::size_t>(cols_) <= tile_,
                "DiagonalMatVec: ", rows_, "x", cols_, " matrix exceeds the ", tile_,
                "-slot layout");
  sp::check(bias_.empty() || bias_.size() == static_cast<std::size_t>(rows_),
            "DiagonalMatVec: bias must be empty or one value per output row");
  plan_ = DiagMatVecPlan::make(weights_, rows_, cols_, n1);

  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(rows_));
  h = fnv_mix(h, static_cast<std::uint64_t>(cols_));
  h = fnv_mix(h, static_cast<std::uint64_t>(tile_));
  h = fnv_mix(h, static_cast<std::uint64_t>(n1));
  h = fnv_doubles(h, weights_);
  h = fnv_doubles(h, bias_);
  fingerprint_ = h;
}

std::vector<double> DiagonalMatVec::diagonal_slots(int s, int g) const {
  return extended_diagonal_slots(weights_, rows_, cols_, s, g, tile_,
                                 enc_->slot_count());
}

Ciphertext DiagonalMatVec::apply(Evaluator& ev, const Ciphertext& x,
                                 const GaloisKeys& gk, bool hoist_babies,
                                 double scale) const {
  sp::check(x.size() == 2, "DiagonalMatVec::apply: input must be 2-part");
  sp::check(x.level() >= 1, "DiagonalMatVec::apply: no level left for the rescale");
  const int qc = x.q_count();

  // Baby fan: rot(x, b) for every distinct nonzero baby step; b = 0 is x.
  std::vector<Ciphertext> rotated;
  if (!plan_.baby_steps.empty()) {
    if (hoist_babies) {
      rotated = ev.rotate_hoisted(x, plan_.baby_steps, gk);
    } else {
      rotated.reserve(plan_.baby_steps.size());
      for (int b : plan_.baby_steps) rotated.push_back(ev.rotate(x, b, gk));
    }
  }
  const auto baby = [&](int b) -> const Ciphertext& {
    if (b == 0) return x;
    const auto it =
        std::lower_bound(plan_.baby_steps.begin(), plan_.baby_steps.end(), b);
    return rotated[static_cast<std::size_t>(it - plan_.baby_steps.begin())];
  };

  // Giant groups, ascending step order (deterministic schedule). Every term
  // sits at scale x.scale * `scale`, so additions are exact and one rescale
  // at the join returns the sum to ~Delta. The diagonal plaintexts are
  // cache-keyed by content; building the slot vector is deferred into the
  // encoder so a warm cache skips it entirely.
  const std::vector<int>& steps = plan_.diag_steps;
  std::optional<Ciphertext> total;
  std::size_t i = 0;
  while (i < steps.size()) {
    const int g = DiagMatVecPlan::giant_of(steps[i], plan_.n1);
    std::optional<Ciphertext> acc;
    for (; i < steps.size() && DiagMatVecPlan::giant_of(steps[i], plan_.n1) == g; ++i) {
      const int s = steps[i];
      Ciphertext term = baby(s - g);
      const std::uint64_t key = fnv_mix(fingerprint_, static_cast<std::uint64_t>(
                                                          static_cast<std::int64_t>(s)));
      ev.multiply_plain_inplace(
          term, *enc_->encode_cached(key, scale, qc,
                                     [&] { return diagonal_slots(s, g); }));
      if (!acc) {
        acc = std::move(term);
      } else {
        ev.add_inplace(*acc, term);
      }
    }
    Ciphertext out_g = g == 0 ? std::move(*acc) : ev.rotate(*acc, g, gk);
    if (!total) {
      total = std::move(out_g);
    } else {
      ev.add_inplace(*total, out_g);
    }
  }
  if (!total) {
    // All-zero matrix: pay the same one-level schedule shape (mask to zero).
    Ciphertext z = x;
    ev.multiply_plain_inplace(z, enc_->encode_scalar(0.0, scale, qc));
    total = std::move(z);
  }
  ev.rescale_inplace(*total);

  if (std::any_of(bias_.begin(), bias_.end(), [](double b) { return b != 0.0; })) {
    const std::uint64_t key = fnv_mix(fingerprint_, 0x62696173ULL /* "bias" */);
    ev.add_plain_inplace(
        *total, *enc_->encode_cached(key, total->scale, total->q_count(), [&] {
          std::vector<double> bv(enc_->slot_count(), 0.0);
          for (std::size_t base = 0; base < bv.size(); base += tile_)
            for (int j = 0; j < rows_; ++j)
              bv[base + static_cast<std::size_t>(j)] =
                  bias_[static_cast<std::size_t>(j)];
          return bv;
        }));
  }
  return std::move(*total);
}

}  // namespace sp::fhe
