#include "fhe/conv2d_fan.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/check.h"
#include "common/hash.h"

namespace sp::fhe {
namespace {

/// Floor-division giant step over channel offsets: g = n1 * floor(c / n1),
/// so b = c - g lands in [0, n1) for negative offsets too.
int giant_of(int c, int n1) {
  int g = (c / n1) * n1;
  if (c < 0 && g > c) g -= n1;
  return g;
}

}  // namespace

// ----------------------------------------------------------------- ConvGeom --

void ConvGeom::validate() const {
  sp::check(in_channels >= 1 && out_channels >= 1, "ConvGeom: empty channel range");
  sp::check(height >= 1 && width >= 1, "ConvGeom: empty spatial grid");
  sp::check(kernel >= 1 && kernel <= height && kernel <= width,
            "ConvGeom: kernel must fit the image");
  sp::check(stride >= 1, "ConvGeom: stride must be >= 1");
  sp::check(elem_stride >= 1 && row_stride >= 1 && ch_stride >= 1,
            "ConvGeom: slot strides must be positive");
  // Collision-free grid: a full row fits between row starts and a full
  // channel plane between channel starts, so distinct (c, y, x) triples map
  // to distinct slots and conv masks never overwrite each other.
  sp::check((width - 1) * elem_stride < row_stride,
            "ConvGeom: grid rows overlap (width * elem_stride > row_stride)");
  sp::check((height - 1) * row_stride + (width - 1) * elem_stride < ch_stride,
            "ConvGeom: channel planes overlap (spatial extent > ch_stride)");
}

// ------------------------------------------------------------ Conv2dFanPlan --

Conv2dFanPlan Conv2dFanPlan::make(const std::vector<double>& weights,
                                  const ConvGeom& g, int oc_lo, int oc_hi,
                                  int ic_lo, int ic_hi, int n1) {
  g.validate();
  sp::check(n1 >= 0, "Conv2dFanPlan: n1 must be >= 0 (0 = rotation fan)");
  sp::check(0 <= oc_lo && oc_lo < oc_hi && oc_hi <= g.out_channels &&
                0 <= ic_lo && ic_lo < ic_hi && ic_hi <= g.in_channels,
            "Conv2dFanPlan: channel ranges out of bounds");
  sp::check(weights.size() == static_cast<std::size_t>(g.out_channels) *
                                  g.in_channels * g.kernel * g.kernel,
            "Conv2dFanPlan: weights must be [out][in][k][k]");

  Conv2dFanPlan plan;
  plan.n1 = n1;
  const int nout = oc_hi - oc_lo;
  const int nin = ic_hi - ic_lo;
  std::set<int> babies, giants;
  // Local channel offsets ascending keeps every giant group contiguous in
  // the term list (giant_of is monotone in c), matching apply()'s walk.
  for (int c = -(nout - 1); c < nin; ++c) {
    const int gstep = n1 == 0 ? 0 : giant_of(c, n1) * g.ch_stride;
    for (int dy = 0; dy < g.kernel; ++dy)
      for (int dx = 0; dx < g.kernel; ++dx) {
        bool nonzero = false;
        for (int ol = std::max(0, -c); ol < std::min(nout, nin - c) && !nonzero;
             ++ol) {
          const int oc = oc_lo + ol;
          const int ic = ic_lo + ol + c;
          nonzero = weights[((static_cast<std::size_t>(oc) * g.in_channels + ic) *
                                 g.kernel +
                             dy) *
                                g.kernel +
                            dx] != 0.0;
        }
        if (!nonzero) continue;
        ConvTerm t;
        t.c = c;
        t.dy = dy;
        t.dx = dx;
        t.shift = c * g.ch_stride + dy * g.row_stride + dx * g.elem_stride;
        t.giant = gstep;
        plan.terms.push_back(t);
        if (t.shift - t.giant != 0) babies.insert(t.shift - t.giant);
        if (t.giant != 0) giants.insert(t.giant);
      }
  }
  plan.baby_steps.assign(babies.begin(), babies.end());
  plan.giant_steps.assign(giants.begin(), giants.end());
  plan.mask_mults = static_cast<int>(plan.terms.size());
  return plan;
}

std::vector<int> Conv2dFanPlan::steps() const {
  std::set<int> all(baby_steps.begin(), baby_steps.end());
  all.insert(giant_steps.begin(), giant_steps.end());
  return std::vector<int>(all.begin(), all.end());
}

// ----------------------------------------------------------- ConvChannelFan --

ConvChannelFan::ConvChannelFan(const Encoder& enc, std::vector<double> weights,
                               std::vector<double> bias, const ConvGeom& geom,
                               int n1, std::size_t tile, int chans_per_block)
    : enc_(&enc),
      weights_(std::move(weights)),
      bias_(std::move(bias)),
      geom_(geom),
      tile_(tile == 0 ? enc.slot_count() : tile),
      cpb_(chans_per_block) {
  geom_.validate();
  const std::size_t slots = enc.slot_count();
  sp::check(tile_ <= slots && slots % tile_ == 0,
            "ConvChannelFan: tile must divide the slot count");
  sp::check(cpb_ >= 1, "ConvChannelFan: chans_per_block must be >= 1");
  sp::check(bias_.empty() ||
                bias_.size() == static_cast<std::size_t>(geom_.out_channels),
            "ConvChannelFan: bias must be empty or one value per output channel");
  const int widest = std::min(cpb_, std::max(geom_.in_channels, geom_.out_channels));
  sp::check_fmt(static_cast<std::size_t>(geom_.extent(widest)) <= tile_,
                "ConvChannelFan: ", widest, "-channel block spans ",
                geom_.extent(widest), " slots but the tile has ", tile_);
  blocks_in_ = (geom_.in_channels + cpb_ - 1) / cpb_;
  blocks_out_ = (geom_.out_channels + cpb_ - 1) / cpb_;

  std::uint64_t h = kFnvOffset;
  for (int v : {geom_.in_channels, geom_.out_channels, geom_.height, geom_.width,
                geom_.kernel, geom_.stride, geom_.ch_stride, geom_.row_stride,
                geom_.elem_stride, n1, cpb_})
    h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  h = fnv_mix(h, static_cast<std::uint64_t>(tile_));
  h = fnv_doubles(h, weights_);
  h = fnv_doubles(h, bias_);
  fingerprint_ = h;

  pairs_.reserve(static_cast<std::size_t>(blocks_out_) * blocks_in_);
  for (int bo = 0; bo < blocks_out_; ++bo)
    for (int bi = 0; bi < blocks_in_; ++bi)
      pairs_.push_back(Conv2dFanPlan::make(
          weights_, geom_, bo * cpb_, std::min(geom_.out_channels, (bo + 1) * cpb_),
          bi * cpb_, std::min(geom_.in_channels, (bi + 1) * cpb_), n1));
}

const Conv2dFanPlan* ConvChannelFan::pair_plan(int bo, int bi) const {
  sp::check(0 <= bo && bo < blocks_out_ && 0 <= bi && bi < blocks_in_,
            "ConvChannelFan: block index out of range");
  const Conv2dFanPlan& p = pairs_[static_cast<std::size_t>(bo) * blocks_in_ + bi];
  return p.terms.empty() ? nullptr : &p;
}

std::vector<int> ConvChannelFan::fan_steps(int bi) const {
  std::set<int> steps;
  for (int bo = 0; bo < blocks_out_; ++bo)
    if (const Conv2dFanPlan* p = pair_plan(bo, bi))
      steps.insert(p->baby_steps.begin(), p->baby_steps.end());
  return std::vector<int>(steps.begin(), steps.end());
}

std::vector<int> ConvChannelFan::all_steps() const {
  std::set<int> steps;
  for (const Conv2dFanPlan& p : pairs_) {
    steps.insert(p.baby_steps.begin(), p.baby_steps.end());
    steps.insert(p.giant_steps.begin(), p.giant_steps.end());
  }
  return std::vector<int>(steps.begin(), steps.end());
}

int ConvChannelFan::total_masks() const {
  int total = 0;
  for (const Conv2dFanPlan& p : pairs_) total += p.mask_mults;
  return total;
}

std::vector<double> ConvChannelFan::mask_slots(int bo, int bi,
                                               const ConvTerm& t) const {
  const std::size_t slots = enc_->slot_count();
  const int tile = static_cast<int>(tile_);
  std::vector<double> v(slots, 0.0);
  const int nout = std::min(geom_.out_channels, (bo + 1) * cpb_) - bo * cpb_;
  const int nin = std::min(geom_.in_channels, (bi + 1) * cpb_) - bi * cpb_;
  const int oh = geom_.out_h(), ow = geom_.out_w();
  const int ors = geom_.out_row_stride(), oes = geom_.out_elem_stride();
  for (int ol = std::max(0, -t.c); ol < std::min(nout, nin - t.c); ++ol) {
    const int oc = bo * cpb_ + ol;
    const int ic = bi * cpb_ + ol + t.c;
    const double w =
        weights_[((static_cast<std::size_t>(oc) * geom_.in_channels + ic) *
                      geom_.kernel +
                  t.dy) *
                     geom_.kernel +
                 t.dx];
    if (w == 0.0) continue;
    for (int oy = 0; oy < oh; ++oy)
      for (int ox = 0; ox < ow; ++ox) {
        // Pre-rotation by the giant: the group rotation moves this weight
        // back to the anchor slot where the output element lives.
        const int p = ol * geom_.ch_stride + oy * ors + ox * oes;
        const int at = ((p + t.giant) % tile + tile) % tile;
        for (std::size_t base = 0; base < slots; base += tile_)
          v[base + static_cast<std::size_t>(at)] = w;
      }
  }
  return v;
}

std::vector<Ciphertext> ConvChannelFan::apply(Evaluator& ev,
                                              const std::vector<Ciphertext>& in,
                                              const GaloisKeys& gk, bool hoist,
                                              double scale) const {
  sp::check(static_cast<int>(in.size()) == blocks_in_,
            "ConvChannelFan::apply: wrong input block count");
  for (const Ciphertext& x : in) {
    sp::check(x.size() == 2, "ConvChannelFan::apply: inputs must be 2-part");
    sp::check(x.level() >= 1, "ConvChannelFan::apply: no level left for the rescale");
  }
  const int qc = in[0].q_count();

  std::vector<std::optional<Ciphertext>> acc(
      static_cast<std::size_t>(blocks_out_));
  for (int bi = 0; bi < blocks_in_; ++bi) {
    // One baby fan per input block, shared by every output block it feeds
    // (the HoistedDecomposition pays its digit split once for the union).
    const std::vector<int> fan = fan_steps(bi);
    std::vector<Ciphertext> rotated;
    if (!fan.empty()) {
      if (hoist) {
        rotated = ev.rotate_hoisted(in[static_cast<std::size_t>(bi)], fan, gk);
      } else {
        rotated.reserve(fan.size());
        for (int s : fan)
          rotated.push_back(ev.rotate(in[static_cast<std::size_t>(bi)], s, gk));
      }
    }
    const auto baby = [&](int b) -> const Ciphertext& {
      if (b == 0) return in[static_cast<std::size_t>(bi)];
      const auto it = std::lower_bound(fan.begin(), fan.end(), b);
      return rotated[static_cast<std::size_t>(it - fan.begin())];
    };

    for (int bo = 0; bo < blocks_out_; ++bo) {
      const Conv2dFanPlan* plan = pair_plan(bo, bi);
      if (plan == nullptr) continue;
      // Giant groups in term order (contiguous by construction): mask every
      // baby at Delta, join the group, rotate once, add into the output
      // block's partial sum.
      const std::vector<ConvTerm>& terms = plan->terms;
      std::size_t i = 0;
      while (i < terms.size()) {
        const int g = terms[i].giant;
        std::optional<Ciphertext> group;
        for (; i < terms.size() && terms[i].giant == g; ++i) {
          const ConvTerm& t = terms[i];
          Ciphertext term = baby(t.shift - t.giant);
          std::uint64_t key = fnv_mix(fingerprint_, 0x636f6e76ULL /* "conv" */);
          key = fnv_mix(key, static_cast<std::uint64_t>(bo));
          key = fnv_mix(key, static_cast<std::uint64_t>(bi));
          key = fnv_mix(key, static_cast<std::uint64_t>(static_cast<std::int64_t>(t.c)));
          key = fnv_mix(key, static_cast<std::uint64_t>(t.dy * geom_.kernel + t.dx));
          ev.multiply_plain_inplace(
              term, *enc_->encode_cached(key, scale, qc,
                                         [&] { return mask_slots(bo, bi, t); }));
          if (!group) {
            group = std::move(term);
          } else {
            ev.add_inplace(*group, term);
          }
        }
        Ciphertext out_g = g == 0 ? std::move(*group) : ev.rotate(*group, g, gk);
        if (!acc[static_cast<std::size_t>(bo)]) {
          acc[static_cast<std::size_t>(bo)] = std::move(out_g);
        } else {
          ev.add_inplace(*acc[static_cast<std::size_t>(bo)], out_g);
        }
      }
    }
  }

  const bool has_bias =
      std::any_of(bias_.begin(), bias_.end(), [](double b) { return b != 0.0; });
  std::vector<Ciphertext> out;
  out.reserve(static_cast<std::size_t>(blocks_out_));
  for (int bo = 0; bo < blocks_out_; ++bo) {
    Ciphertext y = [&] {
      if (acc[static_cast<std::size_t>(bo)])
        return std::move(*acc[static_cast<std::size_t>(bo)]);
      // No nonzero term feeds this block: pay the same one-level schedule
      // shape (mask to zero) so every output block lands at equal level.
      Ciphertext z = in[0];
      ev.multiply_plain_inplace(z, enc_->encode_scalar(0.0, scale, qc));
      return z;
    }();
    ev.rescale_inplace(y);
    if (has_bias) {
      std::uint64_t key = fnv_mix(fingerprint_, 0x62696173ULL /* "bias" */);
      key = fnv_mix(key, static_cast<std::uint64_t>(bo));
      ev.add_plain_inplace(
          y, *enc_->encode_cached(key, y.scale, y.q_count(), [&] {
            std::vector<double> bv(enc_->slot_count(), 0.0);
            const int nout =
                std::min(geom_.out_channels, (bo + 1) * cpb_) - bo * cpb_;
            const int oh = geom_.out_h(), ow = geom_.out_w();
            const int ors = geom_.out_row_stride(), oes = geom_.out_elem_stride();
            for (int ol = 0; ol < nout; ++ol) {
              const double b = bias_[static_cast<std::size_t>(bo * cpb_ + ol)];
              if (b == 0.0) continue;
              for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                  const std::size_t at = static_cast<std::size_t>(
                      ol * geom_.ch_stride + oy * ors + ox * oes);
                  for (std::size_t base = 0; base < bv.size(); base += tile_)
                    bv[base + at] = b;
                }
            }
            return bv;
          }));
    }
    out.push_back(std::move(y));
  }
  return out;
}

}  // namespace sp::fhe
