#include "fhe/enc_matvec.h"

#include <algorithm>
#include <optional>

#include "common/check.h"

namespace sp::fhe {

Ciphertext scaled_to(Evaluator& ev, const CkksContext& ctx, const Encoder& enc,
                     const Ciphertext& ct, double factor, int target_level,
                     double target_scale) {
  sp::check(ct.level() >= target_level + 1, "scaled_to: out of levels");
  Ciphertext out = ct;
  ev.drop_to_level(out, target_level + 1);
  const u64 q = ctx.q(target_level + 1).value();
  const double cs = target_scale * static_cast<double>(q) / out.scale;
  ev.multiply_plain_inplace(out, enc.encode_scalar(factor, cs, out.q_count()));
  ev.rescale_inplace(out);
  out.scale = target_scale;  // exact by construction
  return out;
}

EncDiagMatVec EncDiagMatVec::encrypt(const CkksContext& ctx, const Encoder& enc,
                                     Encryptor& encryptor,
                                     const DiagMatVecPlan& plan,
                                     const std::vector<double>& weights,
                                     std::size_t tile, double scale) {
  sp::check(!plan.diag_steps.empty(),
            "EncDiagMatVec: plan has no nonzero diagonals");
  const std::size_t slots = enc.slot_count();
  const std::size_t t = tile == 0 ? slots : tile;
  sp::check(weights.size() == static_cast<std::size_t>(plan.rows) *
                                  static_cast<std::size_t>(plan.cols),
            "EncDiagMatVec: weights must be row-major plan.rows x plan.cols");
  EncDiagMatVec out;
  out.plan_ = plan;
  out.diags_.reserve(plan.diag_steps.size());
  for (int s : plan.diag_steps) {
    const int g = DiagMatVecPlan::giant_of(s, plan.n1);
    out.diags_.push_back(encryptor.encrypt(enc.encode(
        extended_diagonal_slots(weights, plan.rows, plan.cols, s, g, t, slots),
        scale, ctx.q_count())));
  }
  return out;
}

Ciphertext EncDiagMatVec::apply(Evaluator& ev, const Ciphertext& v,
                                const GaloisKeys& gk, const KSwitchKey& relin,
                                bool hoist_babies) const {
  sp::check(v.size() == 2, "EncDiagMatVec::apply: input must be 2-part");
  sp::check(!diags_.empty(), "EncDiagMatVec::apply: no diagonals packed");
  // Meet at the lower of the two chains, and keep one level for the rescale.
  const int qc = std::min(v.q_count(), diags_.front().q_count());
  sp::check(qc >= 2, "EncDiagMatVec::apply: no level left for the rescale");
  Ciphertext x = v;
  ev.drop_to_level(x, qc - 1);

  // Baby fan: rot(x, b) for every distinct nonzero baby step; b = 0 is x.
  std::vector<Ciphertext> rotated;
  if (!plan_.baby_steps.empty()) {
    if (hoist_babies) {
      rotated = ev.rotate_hoisted(x, plan_.baby_steps, gk);
    } else {
      rotated.reserve(plan_.baby_steps.size());
      for (int b : plan_.baby_steps) rotated.push_back(ev.rotate(x, b, gk));
    }
  }
  const auto baby = [&](int b) -> const Ciphertext& {
    if (b == 0) return x;
    const auto it =
        std::lower_bound(plan_.baby_steps.begin(), plan_.baby_steps.end(), b);
    return rotated[static_cast<std::size_t>(it - plan_.baby_steps.begin())];
  };

  // Giant groups, ascending step order. Each group's inner sum accumulates
  // raw 3-part products (every term sits at scale diag.scale * x.scale, so
  // the adds are exact) and pays ONE relinearization at the group join —
  // mandatory before the giant rotation, which only 2-part ciphertexts
  // support. One rescale at the final join consumes the level.
  const std::vector<int>& steps = plan_.diag_steps;
  std::optional<Ciphertext> total;
  std::size_t i = 0;
  while (i < steps.size()) {
    const int g = DiagMatVecPlan::giant_of(steps[i], plan_.n1);
    std::optional<Ciphertext> acc;
    for (; i < steps.size() && DiagMatVecPlan::giant_of(steps[i], plan_.n1) == g;
         ++i) {
      Ciphertext d = diags_[i];
      ev.drop_to_level(d, qc - 1);
      Ciphertext term = ev.multiply_no_relin(d, baby(steps[i] - g));
      if (!acc) {
        acc = std::move(term);
      } else {
        ev.add_inplace(*acc, term);
      }
    }
    ev.relinearize_inplace(*acc, relin);
    Ciphertext out_g = g == 0 ? std::move(*acc) : ev.rotate(*acc, g, gk);
    if (!total) {
      total = std::move(out_g);
    } else {
      ev.add_inplace(*total, out_g);
    }
  }
  ev.rescale_inplace(*total);
  return std::move(*total);
}

}  // namespace sp::fhe
