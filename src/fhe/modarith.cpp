#include "fhe/modarith.h"

#include "common/check.h"

namespace sp::fhe {

Modulus::Modulus(u64 q) : q_(q) {
  sp::check(q >= 2 && q < (1ULL << 62), "Modulus: q out of range");
  // floor(2^128 / q) computed by long division of 2^128 by q.
  // high word: floor(2^128/q) = (2^128 - 1)/q for non-power-of-two q is the
  // same as floor((2^128-1)/q) unless q divides 2^128 (impossible for odd q).
  const u128 numer_hi = (~static_cast<u128>(0)) / q;  // floor((2^128-1)/q)
  ratio_hi_ = static_cast<u64>(numer_hi >> 64);
  ratio_lo_ = static_cast<u64>(numer_hi);
}

u64 Modulus::reduce128(u128 x) const {
  const u64 x_lo = static_cast<u64>(x);
  const u64 x_hi = static_cast<u64>(x >> 64);
  // Estimate floor(x / q) ~= floor(x * ratio / 2^128), then correct.
  const u128 t1 = static_cast<u128>(x_lo) * ratio_hi_;
  const u128 t2 = static_cast<u128>(x_hi) * ratio_lo_;
  const u64 carry = static_cast<u64>((static_cast<u128>(x_lo) * ratio_lo_) >> 64);
  const u128 mid = t1 + t2 + carry;
  const u64 est = static_cast<u64>(x_hi) * ratio_hi_ + static_cast<u64>(mid >> 64);
  u64 r = x_lo - est * q_;  // wraparound ok; remainder < 3q
  while (r >= q_) r -= q_;
  return r;
}

u64 Modulus::pow(u64 a, u64 e) const {
  u64 base = a % q_;
  u64 result = 1;
  while (e) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

u64 Modulus::inv(u64 a) const {
  sp::check(a % q_ != 0, "Modulus::inv: zero has no inverse");
  return pow(a, q_ - 2);  // Fermat; q prime
}

u64 shoup_precompute(u64 w, u64 q) {
  return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

}  // namespace sp::fhe
