#include "fhe/poly_eval.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstring>
#include <optional>
#include <set>

#include "common/check.h"
#include "common/timer.h"

namespace sp::fhe {
namespace {

/// Smallest t with 2^t >= v (v >= 1).
int ceil_log2(int v) {
  int t = 0;
  while ((1 << t) < v) ++t;
  return t;
}

/// Depth-optimal split of an exponent: e = a + b with a the largest power of
/// two strictly below e (a == b == e/2 when e is itself a power of two), so
/// x^e = x^a * x^b lands at depth ceil(log2 e).
std::pair<int, int> split_exponent(int e) {
  int a = 1;
  while (a * 2 < e) a *= 2;
  return {a, e - a};
}

/// Effective degree of sum_{k in (lo..hi]} c_k x^(k-lo): index distance to
/// the highest nonzero coefficient (0 when the block is constant).
int effective_degree(const approx::Polynomial& p, int lo, int hi) {
  int degree = 0;
  for (int k = lo + 1; k <= hi; ++k)
    if (p.coeff(k) != 0.0) degree = k - lo;
  return degree;
}

/// True if BSGS block j (window exponents [j*kk, j*kk + kk - 1] of the window
/// starting at absolute coefficient `lo`) has any nonzero coefficient.
bool block_has_nonzero(const approx::Polynomial& p, int lo, int kk, int j) {
  for (int i = 0; i < kk; ++i)
    if (p.coeff(lo + j * kk + i) != 0.0) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Planning: pure cost models that mirror the executors below operation for
// operation, so the strategy choice (and the EvalStats savings report) is
// exact rather than asymptotic.
// ---------------------------------------------------------------------------

/// Simulates PowerBasis: counts the ct-ct mults needed to extend the cached
/// exponent set by the requested powers (same split rule as the executor).
struct PowerSim {
  std::set<int> have;
  int mults = 0;
  void need(int e) {
    if (have.count(e)) return;
    auto [a, b] = split_exponent(e);
    need(a);
    if (b != a) need(b);
    have.insert(e);
    ++mults;
  }
};

/// Mirrors the ladder path of eval_window: counts joins and power builds.
void plan_ladder(const approx::Polynomial& p, int lo, int hi, PowerSim& ps, int& joins) {
  const int d = effective_degree(p, lo, hi);
  if (d <= 1) return;
  int h = 1;
  while (h * 2 <= d) h *= 2;
  ps.need(h);
  const int d_b = effective_degree(p, lo + h, lo + d);
  if (d_b > 0) {
    plan_ladder(p, lo + h, lo + d, ps, joins);
    ++joins;
  }
  plan_ladder(p, lo, lo + h - 1, ps, joins);
}

/// Plan node for a BSGS block range: whether it reduces to a scalar constant
/// and, if not, the minimum depth (levels below the basis input) at which it
/// can be delivered.
struct BlockPlan {
  bool is_const;
  int depth;
};

/// Mirrors eval_blocks: block range [blo, bhi] of window `lo` with baby
/// window kk.
BlockPlan plan_blocks(const approx::Polynomial& p, int lo, int kk, int blo, int bhi,
                      PowerSim& ps, int& joins) {
  int d_blocks = 0;
  for (int j = blo + 1; j <= bhi; ++j)
    if (block_has_nonzero(p, lo, kk, j)) d_blocks = j - blo;

  if (d_blocks == 0) {
    int depth = 0;
    bool any = false;
    for (int i = 1; i < kk; ++i) {
      if (p.coeff(lo + blo * kk + i) == 0.0) continue;
      ps.need(i);
      depth = std::max(depth, ceil_log2(i) + 1);
      any = true;
    }
    if (!any) return {true, 0};
    return {false, depth};
  }

  int t = 1;
  while (t * 2 <= d_blocks) t *= 2;
  const int g = kk * t;
  ps.need(g);
  const BlockPlan b = plan_blocks(p, lo, kk, blo + t, blo + d_blocks, ps, joins);
  int term_depth;
  if (b.is_const) {
    term_depth = ceil_log2(g) + 1;
  } else {
    term_depth = std::max(ceil_log2(g), b.depth) + 1;
    ++joins;
  }
  const BlockPlan a = plan_blocks(p, lo, kk, blo, blo + t - 1, ps, joins);
  int depth = term_depth;
  if (!a.is_const) depth = std::max(depth, a.depth);
  return {false, depth};
}

PowerSim sim_from_basis(const PowerBasis& basis) {
  PowerSim ps;
  for (int e : basis.cached_exponents()) ps.have.insert(e);
  return ps;
}

/// Cheapest pure-ladder cost for the window, given already-cached powers.
int ladder_cost(const approx::Polynomial& p, int lo, int d, PowerSim seed) {
  int joins = 0;
  plan_ladder(p, lo, lo + d, seed, joins);
  return seed.mults + joins;
}

int ladder_cost(const approx::Polynomial& p, int lo, int d, const PowerBasis& basis) {
  return ladder_cost(p, lo, d, sim_from_basis(basis));
}

/// Picks the BSGS baby window kk for window [lo, lo+d] that fits the level
/// `budget` with the fewest ct-ct mults, or nullopt when no BSGS plan
/// strictly beats the pure ladder (the caller then runs the ladder node).
std::optional<int> choose_bsgs(const approx::Polynomial& p, int lo, int d, int budget,
                               const PowerSim& seed) {
  const int ladder_mults = ladder_cost(p, lo, d, seed);
  int best_k = 0;
  int best_mults = INT_MAX;
  for (int kk = 2; kk <= 2 * d; kk *= 2) {
    PowerSim ps = seed;
    int joins = 0;
    const BlockPlan plan = plan_blocks(p, lo, kk, 0, d / kk, ps, joins);
    if (plan.is_const || plan.depth > budget) continue;
    const int total = ps.mults + joins;
    if (total < best_mults) {
      best_mults = total;
      best_k = kk;
    }
  }
  if (best_k != 0 && best_mults < ladder_mults) return best_k;
  return std::nullopt;
}

std::optional<int> choose_bsgs(const approx::Polynomial& p, int lo, int d, int budget,
                               const PowerBasis& basis) {
  return choose_bsgs(p, lo, d, budget, sim_from_basis(basis));
}

/// Mirrors eval_window's full decision recursion for predict_poly: every
/// ladder node re-consults the BSGS planner against the live power set (just
/// like the executor), so the predicted ct-mult count is exact. `budget` is
/// the node's remaining level slack (depth at the root, one less for each
/// high-half recursion).
void sim_window(const approx::Polynomial& p, int lo, int hi, int budget, bool use_bsgs,
                PowerSim& ps, int& joins) {
  const int d = effective_degree(p, lo, hi);
  if (d <= 1) return;  // constant, or a single coefficient rescale
  if (use_bsgs) {
    if (auto kk = choose_bsgs(p, lo, d, budget, ps)) {
      plan_blocks(p, lo, *kk, 0, d / *kk, ps, joins);
      return;
    }
  }
  int h = 1;
  while (h * 2 <= d) h *= 2;
  ps.need(h);
  const int d_b = effective_degree(p, lo + h, lo + d);
  if (d_b > 0) {
    sim_window(p, lo + h, lo + d, budget - 1, use_bsgs, ps, joins);
    ++joins;
  }
  sim_window(p, lo, lo + h - 1, budget, use_bsgs, ps, joins);
}

/// FNV-1a over the raw coefficient doubles: the CompositeBasis output-memo
/// fingerprint (bitwise coefficient identity, which is the reuse contract).
std::uint64_t hash_coeffs(const approx::Polynomial& p) {
  std::uint64_t h = 1469598103934665603ull;
  for (double c : p.coeffs()) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &c, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Shared state of one eval_poly call.
struct EvalCtx {
  Evaluator* ev;
  const Encoder* encoder;
  const KSwitchKey* relin;
  const CkksContext* ctx;
  EvalStats* stats;
  PowerBasis* basis;
  bool use_bsgs;
  bool lazy;  ///< defer relinearization of window products to the joins
};

void count_mult(EvalCtx& ec) {
  if (ec.stats) {
    ++ec.stats->ct_mults;
    ++ec.stats->relins;
    ++ec.stats->rescales;
  }
}

/// Partial window sum during execution. `done` holds the 2-part
/// contributions already delivered at (target_level, target_scale);
/// `pending` holds lazily accumulated 3-part tensor products one level up
/// (scale target_scale * q), all sharing one relinearization + one rescale
/// at the join. Deferring the rescale together with the relin matters for
/// precision: rescaling a 3-part ciphertext would inject tau * s^2 rounding
/// noise per product, while the joined sum is relinearized first and then
/// rescaled once — never noisier than the eager schedule.
struct WindowSum {
  std::optional<Ciphertext> done;
  std::optional<Ciphertext> pending;
  double constant = 0.0;
};

void add_done(EvalCtx& ec, WindowSum& sum, Ciphertext&& ct) {
  if (sum.done)
    ec.ev->add_inplace(*sum.done, ct);
  else
    sum.done = std::move(ct);
}

void add_pending(EvalCtx& ec, WindowSum& sum, Ciphertext&& ct) {
  if (sum.pending)
    ec.ev->add_inplace(*sum.pending, ct);
  else
    sum.pending = std::move(ct);
}

/// term = xa * b into the sum: eager mode pays relin + rescale immediately
/// (`done` slot); lazy mode parks the raw 3-part product in `pending`.
void add_product(EvalCtx& ec, WindowSum& sum, const Ciphertext& xa, const Ciphertext& b,
                 double target_scale, double pre_scale) {
  if (ec.lazy) {
    Ciphertext term = ec.ev->multiply_no_relin(xa, b);
    term.scale = pre_scale;  // = target_scale * q, exact by construction
    if (ec.stats) {
      ++ec.stats->ct_mults;
      ++ec.stats->relins_deferred;
    }
    add_pending(ec, sum, std::move(term));
  } else {
    Ciphertext term = ec.ev->multiply(xa, b);
    ec.ev->relinearize_inplace(term, *ec.relin);
    ec.ev->rescale_inplace(term);
    term.scale = target_scale;  // exact by construction
    count_mult(ec);
    add_done(ec, sum, std::move(term));
  }
}


/// (factor * ct) at (target_level, target_scale): one plain mult + rescale.
Ciphertext rescale_onto(EvalCtx& ec, const Ciphertext& ct, double factor,
                        int target_level, double target_scale) {
  sp::check(ct.level() >= target_level + 1, "eval_poly: out of levels");
  Ciphertext out = ct;
  ec.ev->drop_to_level(out, target_level + 1);
  const u64 q = ec.ctx->q(target_level + 1).value();
  const double cs = target_scale * static_cast<double>(q) / out.scale;
  ec.ev->multiply_plain_inplace(out, ec.encoder->encode_scalar(factor, cs, out.q_count()));
  ec.ev->rescale_inplace(out);
  out.scale = target_scale;
  if (ec.stats) ++ec.stats->plain_mults;
  return out;
}

void fold_constant(EvalCtx& ec, Ciphertext& ct, double c) {
  if (c == 0.0) return;
  ec.ev->add_plain_inplace(ct, ec.encoder->encode_scalar(c, ct.scale, ct.q_count()));
}

/// Joins a window sum into one ciphertext at (target_level, target_scale):
/// the pending products share a single relinearization + rescale. Returns
/// nullopt (leaving *constant_out) when the sum is a bare constant.
std::optional<Ciphertext> resolve(EvalCtx& ec, WindowSum&& sum, double target_scale,
                                  double* constant_out) {
  *constant_out = sum.constant;
  std::optional<Ciphertext> out;
  if (sum.pending) {
    ec.ev->relinearize_inplace(*sum.pending, *ec.relin);
    ec.ev->rescale_inplace(*sum.pending);
    sum.pending->scale = target_scale;
    if (ec.stats) {
      ++ec.stats->relins;
      ++ec.stats->rescales;
    }
    out = std::move(sum.pending);
    if (sum.done) ec.ev->add_inplace(*out, *sum.done);
  } else {
    out = std::move(sum.done);
  }
  if (out) {
    fold_constant(ec, *out, *constant_out);
    *constant_out = 0.0;
  }
  return out;
}

/// Merges a sibling sum delivered at the same (level, scale) pair.
void merge(EvalCtx& ec, WindowSum& sum, WindowSum&& other) {
  if (other.done) add_done(ec, sum, std::move(*other.done));
  if (other.pending) add_pending(ec, sum, std::move(*other.pending));
  sum.constant += other.constant;
}

/// BSGS executor: sum_{j=blo..bhi} B_j(x) x^{(j-blo)*kk} delivered at exactly
/// (target_level, target_scale), where B_j is block j of the window at `lo`.
/// Baby blocks combine cached powers with fused coefficient rescales (no
/// ct-ct mults); giant steps x^(kk*t) join block ranges with one ct-ct mult
/// per non-constant range, mirroring plan_blocks.
WindowSum eval_blocks(EvalCtx& ec, const approx::Polynomial& p, int lo, int kk, int blo,
                      int bhi, int target_level, double target_scale) {
  WindowSum sum;
  int d_blocks = 0;
  for (int j = blo + 1; j <= bhi; ++j)
    if (block_has_nonzero(p, lo, kk, j)) d_blocks = j - blo;

  if (d_blocks == 0) {
    // Single baby block: a linear combination of cached powers x^1..x^{kk-1}.
    sum.constant = p.coeff(lo + blo * kk);
    std::optional<Ciphertext> acc;
    for (int i = 1; i < kk; ++i) {
      const double c = p.coeff(lo + blo * kk + i);
      if (c == 0.0) continue;
      const Ciphertext& xi = ec.basis->power(*ec.ev, i, ec.stats);
      Ciphertext term = rescale_onto(ec, xi, c, target_level, target_scale);
      if (acc)
        acc = ec.ev->add(*acc, term);
      else
        acc = std::move(term);
    }
    if (acc) {
      fold_constant(ec, *acc, sum.constant);
      sum.constant = 0.0;
      sum.done = std::move(acc);
    }
    return sum;
  }

  int t = 1;
  while (t * 2 <= d_blocks) t *= 2;
  const Ciphertext& xg = ec.basis->power(*ec.ev, kk * t, ec.stats);

  // term = x^(kk*t) * (blocks blo+t .. blo+d_blocks), landing at target_scale.
  {
    const u64 q = ec.ctx->q(target_level + 1).value();
    const double b_scale = target_scale * static_cast<double>(q) / xg.scale;
    double b_const = 0.0;
    std::optional<Ciphertext> b =
        resolve(ec,
                eval_blocks(ec, p, lo, kk, blo + t, blo + d_blocks, target_level + 1,
                            b_scale),
                b_scale, &b_const);
    if (!b) {
      add_done(ec, sum, rescale_onto(ec, xg, b_const, target_level, target_scale));
    } else {
      Ciphertext xa = xg;
      ec.ev->drop_to_level(xa, target_level + 1);
      add_product(ec, sum, xa, *b, target_scale,
                  target_scale * static_cast<double>(q));
    }
  }

  merge(ec, sum,
        eval_blocks(ec, p, lo, kk, blo, blo + t - 1, target_level, target_scale));
  return sum;
}

/// Evaluates the window sum_{k=lo..hi} c_k x^(k-lo), delivered at exactly
/// (target_level, target_scale) once the caller resolves the returned sum.
///
/// Each node first asks the planner whether a BSGS decomposition fits the
/// remaining level budget with strictly fewer ct-ct mults; otherwise it runs
/// one step of the balanced ladder split p = A + x^h * B and recurses — so
/// the schedule never consumes more levels or more multiplications than the
/// pure ladder (Appendix-C) baseline.
WindowSum eval_window(EvalCtx& ec, const approx::Polynomial& p, int lo, int hi,
                      int target_level, double target_scale) {
  WindowSum sum;
  sum.constant = p.coeff(lo);
  const int d = effective_degree(p, lo, hi);
  if (d == 0) return sum;

  const Ciphertext& x = ec.basis->x();
  if (d == 1) {
    add_done(ec, sum, rescale_onto(ec, x, p.coeff(lo + 1), target_level, target_scale));
    return sum;
  }

  if (ec.use_bsgs) {
    const int budget = x.level() - target_level;
    if (auto kk = choose_bsgs(p, lo, d, budget, *ec.basis)) {
      // Block 0 of the decomposition covers the window constant p.coeff(lo).
      return eval_blocks(ec, p, lo, *kk, 0, d / *kk, target_level, target_scale);
    }
  }
  sum.constant = 0.0;  // the low-half recursion below carries p.coeff(lo)

  int h = 1;
  while (h * 2 <= d) h *= 2;
  const Ciphertext& xh = ec.basis->power(*ec.ev, h, ec.stats);

  // --- term = x^h * B, landing at target_scale -----------------------------
  const int d_b = effective_degree(p, lo + h, lo + d);
  if (d_b == 0) {
    // B is the single constant coefficient c_{lo+h} (nonzero by choice of d).
    add_done(ec, sum, rescale_onto(ec, xh, p.coeff(lo + h), target_level, target_scale));
  } else {
    const u64 q = ec.ctx->q(target_level + 1).value();
    const double b_scale = target_scale * static_cast<double>(q) / xh.scale;
    double b_const = 0.0;
    std::optional<Ciphertext> b = resolve(
        ec, eval_window(ec, p, lo + h, lo + d, target_level + 1, b_scale), b_scale,
        &b_const);
    sp::check(b.has_value(), "eval_poly: non-constant block produced no ciphertext");
    Ciphertext xa = xh;
    ec.ev->drop_to_level(xa, target_level + 1);
    add_product(ec, sum, xa, *b, target_scale, target_scale * static_cast<double>(q));
  }

  // --- low block A at the same (level, scale) ------------------------------
  merge(ec, sum, eval_window(ec, p, lo, lo + h - 1, target_level, target_scale));
  return sum;
}

}  // namespace

// ---------------------------------------------------------------------------
// PowerBasis.
// ---------------------------------------------------------------------------

void PowerBasis::reset(const CkksContext& ctx, const KSwitchKey& relin,
                       const Ciphertext& x) {
  ctx_ = &ctx;
  relin_ = &relin;
  pow_.clear();
  pow_.emplace(1, x);
  mults_spent_ = 0;
}

std::vector<int> PowerBasis::cached_exponents() const {
  std::vector<int> out;
  out.reserve(pow_.size());
  for (const auto& [e, ct] : pow_) out.push_back(e);
  return out;
}

const Ciphertext& PowerBasis::power(Evaluator& ev, int e, EvalStats* stats) {
  sp::check(initialized(), "PowerBasis: not initialized");
  sp::check(e >= 1, "PowerBasis: exponent must be >= 1");
  auto it = pow_.find(e);
  if (it != pow_.end()) return it->second;

  const auto [a, b] = split_exponent(e);
  const Ciphertext& pa = power(ev, a, stats);
  Ciphertext prod;
  if (a == b) {
    prod = ev.multiply(pa, pa);
  } else {
    // std::map references are stable across the recursive insertions.
    const Ciphertext& pb = power(ev, b, stats);
    Ciphertext ca = pa;
    Ciphertext cb = pb;
    ev.match_levels(ca, cb);
    prod = ev.multiply(ca, cb);
  }
  ev.relinearize_inplace(prod, *relin_);
  ev.rescale_inplace(prod);
  ++mults_spent_;
  if (stats) {
    ++stats->ct_mults;
    ++stats->relins;
    ++stats->rescales;
  }
  return pow_.emplace(e, std::move(prod)).first->second;
}

// ---------------------------------------------------------------------------
// PafEvaluator.
// ---------------------------------------------------------------------------

int PafEvaluator::mult_depth(const approx::Polynomial& p) {
  return ceil_log2(effective_degree(p, 0, p.degree()) + 1);
}

Ciphertext PafEvaluator::scaled_to(Evaluator& ev, const Ciphertext& ct, double factor,
                                   int target_level, double target_scale) const {
  sp::check(ct.level() >= target_level + 1,
            "scaled_to: ciphertext too low to reach target level");
  Ciphertext out = ct;
  ev.drop_to_level(out, target_level + 1);
  const u64 q = ctx_->q(target_level + 1).value();
  const double coeff_scale = target_scale * static_cast<double>(q) / out.scale;
  const Plaintext pt = encoder_->encode_scalar(factor, coeff_scale, out.q_count());
  ev.multiply_plain_inplace(out, pt);
  ev.rescale_inplace(out);
  out.scale = target_scale;  // exact by construction, up to fp rounding
  return out;
}

Ciphertext PafEvaluator::eval_poly(Evaluator& ev, const Ciphertext& x,
                                   const approx::Polynomial& p, EvalStats* stats) const {
  PowerBasis basis(*ctx_, *relin_, x);
  return eval_poly(ev, basis, p, stats);
}

Ciphertext PafEvaluator::eval_poly(Evaluator& ev, PowerBasis& basis,
                                   const approx::Polynomial& p, EvalStats* stats) const {
  sp::check(basis.initialized(), "eval_poly: basis not initialized");
  sp::check(p.degree() >= 1, "eval_poly: degree >= 1 required");
  const int deg = effective_degree(p, 0, p.degree());
  sp::check(deg >= 1, "eval_poly: polynomial reduced to a constant");
  const Ciphertext& x = basis.x();
  const int depth = ceil_log2(deg + 1);
  sp::check(x.level() >= depth, "eval_poly: not enough levels for this degree");

  // Ladder baseline for the savings report (already-cached powers are free
  // under both schedules, so the comparison stays apples-to-apples on reuse).
  const int baseline = ladder_cost(p, 0, deg, basis);
  const int mults_before = stats ? stats->ct_mults : 0;

  EvalCtx ec{&ev,  encoder_, relin_, ctx_, stats, &basis,
             strategy_ == Strategy::BSGS, lazy_relin_};
  double constant = 0.0;
  // The final resolve is the last join: any lazily accumulated 3-part sum
  // pays its single relinearization + rescale here.
  std::optional<Ciphertext> out =
      resolve(ec, eval_window(ec, p, 0, deg, x.level() - depth, ctx_->scale()),
              ctx_->scale(), &constant);
  sp::check(out.has_value(), "eval_poly: polynomial reduced to a constant");

  if (stats) {
    stats->ladder_ct_mults += baseline;
    const int saved = baseline - (stats->ct_mults - mults_before);
    stats->ct_mults_saved += saved;
    stats->relins_saved += saved;
    stats->rescales_saved += saved;
  }
  return std::move(*out);
}

Ciphertext PafEvaluator::eval_composite(Evaluator& ev, const Ciphertext& x,
                                        const approx::CompositePaf& paf,
                                        EvalStats* stats) const {
  PowerBasis basis(*ctx_, *relin_, x);
  return eval_composite(ev, basis, paf, stats);
}

Ciphertext PafEvaluator::eval_composite(Evaluator& ev, PowerBasis& basis,
                                        const approx::CompositePaf& paf,
                                        EvalStats* stats) const {
  const auto& stages = paf.stages();
  sp::check(!stages.empty(), "eval_composite: empty PAF");
  Ciphertext v = eval_poly(ev, basis, stages.front(), stats);
  for (std::size_t s = 1; s < stages.size(); ++s) {
    PowerBasis stage_basis(*ctx_, *relin_, v);
    v = eval_poly(ev, stage_basis, stages[s], stats);
  }
  return v;
}

Ciphertext PafEvaluator::eval_composite(Evaluator& ev, const Ciphertext& x,
                                        const approx::CompositePaf& paf,
                                        CompositeBasis& cache, EvalStats* stats) const {
  const auto& stages = paf.stages();
  sp::check(!stages.empty(), "eval_composite: empty PAF");
  if (cache.stages_.size() < stages.size()) cache.stages_.resize(stages.size());

  Ciphertext v = x;
  bool invalidate_rest = false;  // an upstream stage re-evaluated: the cached
                                 // intermediates below it are stale
  for (std::size_t s = 0; s < stages.size(); ++s) {
    auto& sc = cache.stages_[s];
    if (invalidate_rest) sc = CompositeBasis::StageCache{};
    const std::uint64_t h = hash_coeffs(stages[s]);
    if (!sc.basis.initialized()) {
      sc.basis.reset(*ctx_, *relin_, v);
    } else {
      sp::check(sc.basis.x().level() == v.level(),
                "eval_composite: CompositeBasis stage was built for a different input");
    }
    if (sc.output && sc.coeff_hash == h) {
      v = *sc.output;  // memoized: same input, same coefficients — zero ops
      continue;
    }
    invalidate_rest = true;
    v = eval_poly(ev, sc.basis, stages[s], stats);
    sc.output = v;
    sc.coeff_hash = h;
  }
  return v;
}

Ciphertext PafEvaluator::relu(Evaluator& ev, const Ciphertext& x,
                              const approx::CompositePaf& paf, double input_scale,
                              EvalStats* stats, PowerBasis* basis_cache,
                              CompositeBasis* composite_cache, double pre_factor) const {
  sp::check(input_scale > 0, "relu: input_scale must be positive");
  sp::check(pre_factor != 0.0, "relu: pre_factor must be nonzero");
  sp::Timer timer;

  // The activation sees (pre_factor * x) / input_scale; pre_factor rides the
  // two plaintext multiplications the envelope pays anyway, so a folded
  // scalar stage is free.
  const double in_factor = pre_factor / input_scale;
  Ciphertext p;
  if (composite_cache) {
    Ciphertext t;
    if (composite_cache->initialized() &&
        composite_cache->stage_basis(0).initialized()) {
      sp::check(composite_cache->stage_basis(0).x().level() == x.level() - 1,
                "relu: composite_cache was built for a different ciphertext level");
      t = composite_cache->stage_basis(0).x();
    } else {
      t = scaled_to(ev, x, in_factor, x.level() - 1, ctx_->scale());
      if (stats) ++stats->plain_mults;
    }
    p = eval_composite(ev, t, paf, *composite_cache, stats);
  } else {
    PowerBasis local;
    PowerBasis* basis = basis_cache ? basis_cache : &local;
    if (!basis->initialized()) {
      // t = pre_factor * x / input_scale at scale Delta.
      Ciphertext t = scaled_to(ev, x, in_factor, x.level() - 1, ctx_->scale());
      if (stats) ++stats->plain_mults;
      basis->reset(*ctx_, *relin_, t);
    } else {
      // Cheap sanity check on cache reuse; content equality is the caller's
      // contract (see header).
      sp::check(basis->x().level() == x.level() - 1,
                "relu: basis_cache was built for a different ciphertext level");
    }
    p = eval_composite(ev, *basis, paf, stats);
  }

  // y = (0.5 pre_factor x) * (1 + p): one extra ct-ct multiplication.
  Ciphertext xh = scaled_to(ev, x, 0.5 * pre_factor, p.level(), p.scale);
  if (stats) ++stats->plain_mults;
  const Plaintext one = encoder_->encode_scalar(1.0, p.scale, p.q_count());
  ev.add_plain_inplace(p, one);
  Ciphertext y = ev.multiply(xh, p);
  ev.relinearize_inplace(y, *relin_);
  ev.rescale_inplace(y);
  if (stats) {
    ++stats->ct_mults;
    ++stats->relins;
    ++stats->rescales;
    stats->levels_consumed = x.level() - y.level();
    stats->wall_ms += timer.ms();
  }
  return y;
}

Ciphertext PafEvaluator::max(Evaluator& ev, const Ciphertext& a, const Ciphertext& b,
                             const approx::CompositePaf& paf, double input_scale,
                             EvalStats* stats, PowerBasis* basis_cache,
                             CompositeBasis* composite_cache, double pre_factor) const {
  sp::check(pre_factor != 0.0, "max: pre_factor must be nonzero");
  sp::Timer timer;
  Ciphertext a2 = a, b2 = b;
  ev.match_levels(a2, b2);
  Ciphertext d = ev.sub(a2, b2);
  Ciphertext s = ev.add(a2, b2);

  // With pre_factor f: max(fa, fb) = 0.5 f (a+b) + 0.5 f (a-b) p(f(a-b)/s).
  const double in_factor = pre_factor / input_scale;
  Ciphertext p;
  if (composite_cache) {
    Ciphertext t;
    if (composite_cache->initialized() &&
        composite_cache->stage_basis(0).initialized()) {
      sp::check(composite_cache->stage_basis(0).x().level() == d.level() - 1,
                "max: composite_cache was built for different ciphertext levels");
      t = composite_cache->stage_basis(0).x();
    } else {
      t = scaled_to(ev, d, in_factor, d.level() - 1, ctx_->scale());
    }
    p = eval_composite(ev, t, paf, *composite_cache, stats);
  } else {
    PowerBasis local;
    PowerBasis* basis = basis_cache ? basis_cache : &local;
    if (!basis->initialized()) {
      Ciphertext t = scaled_to(ev, d, in_factor, d.level() - 1, ctx_->scale());
      basis->reset(*ctx_, *relin_, t);
    } else {
      sp::check(basis->x().level() == d.level() - 1,
                "max: basis_cache was built for different ciphertext levels");
    }
    p = eval_composite(ev, *basis, paf, stats);
  }

  Ciphertext dh = scaled_to(ev, d, 0.5 * pre_factor, p.level(), p.scale);
  Ciphertext dp = ev.multiply(dh, p);
  ev.relinearize_inplace(dp, *relin_);
  ev.rescale_inplace(dp);

  Ciphertext sh = scaled_to(ev, s, 0.5 * pre_factor, dp.level(), dp.scale);
  Ciphertext y = ev.add(dp, sh);
  if (stats) {
    ++stats->ct_mults;
    ++stats->relins;
    ++stats->rescales;
    stats->plain_mults += 3;
    stats->wall_ms += timer.ms();
  }
  return y;
}

SchedulePrediction PafEvaluator::predict_poly(const approx::Polynomial& p, Strategy s) {
  SchedulePrediction out;
  const int deg = effective_degree(p, 0, p.degree());
  sp::check(deg >= 1, "predict_poly: polynomial reduced to a constant");
  out.levels = ceil_log2(deg + 1);

  PowerSim ps;
  ps.have.insert(1);
  int joins = 0;
  sim_window(p, 0, deg, out.levels, s == Strategy::BSGS, ps, joins);
  out.ct_mults = ps.mults + joins;
  out.relins = out.ct_mults;
  out.rescales = out.ct_mults;
  for (int k = 1; k <= deg; ++k)
    if (p.coeff(k) != 0.0) ++out.plain_mults;
  return out;
}

SchedulePrediction PafEvaluator::predict_composite(const approx::CompositePaf& paf,
                                                   Strategy s) {
  sp::check(!paf.stages().empty(), "predict_composite: empty PAF");
  SchedulePrediction out;
  for (const auto& stage : paf.stages()) out += predict_poly(stage, s);
  return out;
}

}  // namespace sp::fhe
