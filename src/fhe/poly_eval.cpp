#include "fhe/poly_eval.h"

#include <cmath>
#include <map>
#include <optional>

#include "common/check.h"
#include "common/timer.h"

namespace sp::fhe {
namespace {

/// Shared state of one eval_poly call: memoized power-of-two chain + stats.
struct EvalCtx {
  Evaluator* ev;
  const Encoder* encoder;
  const KSwitchKey* relin;
  const CkksContext* ctx;
  EvalStats* stats;
  std::map<int, Ciphertext> pow2;  // x^(2^k), keyed by exponent
};

void count_mult(EvalCtx& ec) {
  if (ec.stats) {
    ++ec.stats->ct_mults;
    ++ec.stats->relins;
    ++ec.stats->rescales;
  }
}

/// x^e for e a power of two, via the squaring chain.
const Ciphertext& power_of_two(EvalCtx& ec, int e) {
  auto it = ec.pow2.find(e);
  if (it != ec.pow2.end()) return it->second;
  const Ciphertext& half = power_of_two(ec, e / 2);
  Ciphertext sq = ec.ev->multiply(half, half);
  ec.ev->relinearize_inplace(sq, *ec.relin);
  ec.ev->rescale_inplace(sq);
  count_mult(ec);
  return ec.pow2.emplace(e, std::move(sq)).first->second;
}

/// (factor * ct) at (target_level, target_scale): one plain mult + rescale.
Ciphertext rescale_onto(EvalCtx& ec, const Ciphertext& ct, double factor,
                        int target_level, double target_scale) {
  sp::check(ct.level() >= target_level + 1, "eval_poly: out of levels");
  Ciphertext out = ct;
  ec.ev->drop_to_level(out, target_level + 1);
  const u64 q = ec.ctx->q(target_level + 1).value();
  const double cs = target_scale * static_cast<double>(q) / out.scale;
  ec.ev->multiply_plain_inplace(out, ec.encoder->encode_scalar(factor, cs, out.q_count()));
  ec.ev->rescale_inplace(out);
  out.scale = target_scale;
  if (ec.stats) ++ec.stats->plain_mults;
  return out;
}

/// Effective degree of sum_{k in (lo..hi]} c_k x^(k-lo): index distance to
/// the highest nonzero coefficient (0 when the block is constant).
int effective_degree(const approx::Polynomial& p, int lo, int hi) {
  int degree = 0;
  for (int k = lo + 1; k <= hi; ++k)
    if (p.coeff(k) != 0.0) degree = k - lo;
  return degree;
}

/// Multiplication depth the block will consume: ceil(log2(degree+1)).
int block_depth(const approx::Polynomial& p, int lo, int hi) {
  const int d = effective_degree(p, lo, hi);
  if (d == 0) return 0;
  return static_cast<int>(std::ceil(std::log2(static_cast<double>(d) + 1.0)));
}

/// Recursive depth-optimal evaluation of the block sum_{k=lo..hi} c_k
/// x^(k-lo), returning a ciphertext at exactly `target_scale` (nullopt when
/// the block is the constant *constant_out, which the caller folds in).
///
/// Split rule: p = A + x^h * B, h = 2^floor(log2(degree)). Coefficient
/// multiplications are fused into the base cases, so a degree-n block
/// consumes exactly ceil(log2(n+1)) levels — the Appendix-C schedule.
std::optional<Ciphertext> eval_range(EvalCtx& ec, const approx::Polynomial& p, int lo,
                                     int hi, double target_scale, double* constant_out) {
  *constant_out = p.coeff(lo);
  const int d = effective_degree(p, lo, hi);
  if (d == 0) return std::nullopt;

  const Ciphertext& x = ec.pow2.at(1);
  if (d == 1)
    return rescale_onto(ec, x, p.coeff(lo + 1), x.level() - 1, target_scale);

  int h = 1;
  while (h * 2 <= d) h *= 2;
  const Ciphertext& xh = power_of_two(ec, h);

  // --- term = x^h * B, landing at target_scale -----------------------------
  Ciphertext term;
  const int b_lo = lo + h, b_hi = lo + d;
  const int depth_b = block_depth(p, b_lo, b_hi);
  if (depth_b == 0) {
    // B is the single constant coefficient c_{lo+d} (nonzero by choice of d).
    term = rescale_onto(ec, xh, p.coeff(b_lo), xh.level() - 1, target_scale);
  } else {
    const int level_b = x.level() - depth_b;
    const int prod_level = std::min(xh.level(), level_b);
    const u64 q = ec.ctx->q(prod_level).value();
    const double b_scale = target_scale * static_cast<double>(q) / xh.scale;
    double b_const = 0.0;
    std::optional<Ciphertext> b = eval_range(ec, p, b_lo, b_hi, b_scale, &b_const);
    sp::check(b.has_value(), "eval_poly: non-constant block produced no ciphertext");
    sp::check(b->level() == level_b, "eval_poly: B level mismatch");
    if (b_const != 0.0)
      ec.ev->add_plain_inplace(*b, ec.encoder->encode_scalar(b_const, b->scale, b->q_count()));
    Ciphertext xa = xh;
    ec.ev->match_levels(xa, *b);
    term = ec.ev->multiply(xa, *b);
    ec.ev->relinearize_inplace(term, *ec.relin);
    ec.ev->rescale_inplace(term);
    term.scale = target_scale;  // = s_xh * b_scale / q by construction
    count_mult(ec);
  }

  // --- low block A at the same scale ---------------------------------------
  double a_const = 0.0;
  std::optional<Ciphertext> a = eval_range(ec, p, lo, lo + h - 1, target_scale, &a_const);
  if (a.has_value()) {
    sp::check(a->level() >= term.level(), "eval_poly: A deeper than the product");
    ec.ev->drop_to_level(*a, term.level());
    term = ec.ev->add(term, *a);
  }
  if (a_const != 0.0)
    ec.ev->add_plain_inplace(term,
                             ec.encoder->encode_scalar(a_const, term.scale, term.q_count()));
  *constant_out = 0.0;
  return term;
}

}  // namespace

Ciphertext PafEvaluator::scaled_to(Evaluator& ev, const Ciphertext& ct, double factor,
                                   int target_level, double target_scale) const {
  sp::check(ct.level() >= target_level + 1,
            "scaled_to: ciphertext too low to reach target level");
  Ciphertext out = ct;
  ev.drop_to_level(out, target_level + 1);
  const u64 q = ctx_->q(target_level + 1).value();
  const double coeff_scale = target_scale * static_cast<double>(q) / out.scale;
  const Plaintext pt = encoder_->encode_scalar(factor, coeff_scale, out.q_count());
  ev.multiply_plain_inplace(out, pt);
  ev.rescale_inplace(out);
  out.scale = target_scale;  // exact by construction, up to fp rounding
  return out;
}

Ciphertext PafEvaluator::eval_poly(Evaluator& ev, const Ciphertext& x,
                                   const approx::Polynomial& p, EvalStats* stats) const {
  const int deg = p.degree();
  sp::check(deg >= 1, "eval_poly: degree >= 1 required");
  sp::check(x.level() >= static_cast<int>(std::ceil(std::log2(deg + 1.0))),
            "eval_poly: not enough levels for this degree");

  EvalCtx ec{&ev, encoder_, relin_, ctx_, stats, {}};
  ec.pow2.emplace(1, x);

  double constant = 0.0;
  std::optional<Ciphertext> out = eval_range(ec, p, 0, deg, ctx_->scale(), &constant);
  sp::check(out.has_value(), "eval_poly: polynomial reduced to a constant");
  if (constant != 0.0)
    ev.add_plain_inplace(*out, encoder_->encode_scalar(constant, out->scale, out->q_count()));
  return std::move(*out);
}

Ciphertext PafEvaluator::eval_composite(Evaluator& ev, const Ciphertext& x,
                                        const approx::CompositePaf& paf,
                                        EvalStats* stats) const {
  Ciphertext v = x;
  for (const auto& stage : paf.stages()) v = eval_poly(ev, v, stage, stats);
  return v;
}

Ciphertext PafEvaluator::relu(Evaluator& ev, const Ciphertext& x,
                              const approx::CompositePaf& paf, double input_scale,
                              EvalStats* stats) const {
  sp::check(input_scale > 0, "relu: input_scale must be positive");
  sp::Timer timer;

  // t = x / input_scale at scale Delta.
  Ciphertext t = scaled_to(ev, x, 1.0 / input_scale, x.level() - 1, ctx_->scale());
  if (stats) ++stats->plain_mults;

  Ciphertext p = eval_composite(ev, t, paf, stats);

  // y = (0.5 x) * (1 + p): one extra ct-ct multiplication.
  Ciphertext xh = scaled_to(ev, x, 0.5, p.level(), p.scale);
  if (stats) ++stats->plain_mults;
  const Plaintext one = encoder_->encode_scalar(1.0, p.scale, p.q_count());
  ev.add_plain_inplace(p, one);
  Ciphertext y = ev.multiply(xh, p);
  ev.relinearize_inplace(y, *relin_);
  ev.rescale_inplace(y);
  if (stats) {
    ++stats->ct_mults;
    ++stats->relins;
    ++stats->rescales;
    stats->levels_consumed = x.level() - y.level();
    stats->wall_ms += timer.ms();
  }
  return y;
}

Ciphertext PafEvaluator::max(Evaluator& ev, const Ciphertext& a, const Ciphertext& b,
                             const approx::CompositePaf& paf, double input_scale,
                             EvalStats* stats) const {
  sp::Timer timer;
  Ciphertext a2 = a, b2 = b;
  ev.match_levels(a2, b2);
  Ciphertext d = ev.sub(a2, b2);
  Ciphertext s = ev.add(a2, b2);

  Ciphertext t = scaled_to(ev, d, 1.0 / input_scale, d.level() - 1, ctx_->scale());
  Ciphertext p = eval_composite(ev, t, paf, stats);

  Ciphertext dh = scaled_to(ev, d, 0.5, p.level(), p.scale);
  Ciphertext dp = ev.multiply(dh, p);
  ev.relinearize_inplace(dp, *relin_);
  ev.rescale_inplace(dp);

  Ciphertext sh = scaled_to(ev, s, 0.5, dp.level(), dp.scale);
  Ciphertext y = ev.add(dp, sh);
  if (stats) {
    ++stats->ct_mults;
    ++stats->relins;
    ++stats->rescales;
    stats->plain_mults += 3;
    stats->wall_ms += timer.ms();
  }
  return y;
}

}  // namespace sp::fhe
