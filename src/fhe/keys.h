#pragma once

#include <array>
#include <map>
#include <vector>

#include "common/rng.h"
#include "fhe/encoder.h"
#include "fhe/rns_poly.h"

namespace sp::fhe {

/// CKKS ciphertext: 2 (or 3, pre-relinearization) ring elements in NTT form
/// plus the tracked scale. The level is implied by the parts' prime count.
struct Ciphertext {
  std::vector<RnsPoly> parts;
  double scale = 1.0;

  int size() const { return static_cast<int>(parts.size()); }
  int q_count() const { return parts.empty() ? 0 : parts.front().q_count(); }
  /// Remaining rescale budget: level 0 means no further rescale possible.
  int level() const { return q_count() - 1; }
};

/// Ternary secret key, stored in NTT form over the full basis Q ∪ {P}
/// (plus the coefficient form, needed to derive Galois keys).
struct SecretKey {
  RnsPoly s_ntt;     ///< NTT form, all chain primes + special
  RnsPoly s_coeff;   ///< coefficient form, same basis
};

/// Public encryption key (-a s + e, a) over the full chain Q.
struct PublicKey {
  RnsPoly p0, p1;  // NTT form
};

/// Hybrid key-switching key: one two-part encryption of P · w · u_i per
/// decomposition digit i (u_i is the CRT indicator of prime i), over the
/// basis Q ∪ {P}. `w` is s^2 for relinearization or s(X^g) for rotation.
struct KSwitchKey {
  std::vector<std::array<RnsPoly, 2>> digits;
};

/// Rotation keys indexed by Galois element.
struct GaloisKeys {
  std::map<u64, KSwitchKey> keys;
};

/// Generates all key material from a seeded RNG.
class KeyGenerator {
 public:
  KeyGenerator(const CkksContext& ctx, std::uint64_t seed);

  const SecretKey& secret_key() const { return sk_; }
  PublicKey public_key();

  /// Relinearization key (switches the s^2 component back to s).
  KSwitchKey relin_key();

  /// Rotation keys for the given slot-rotation steps (positive = left).
  GaloisKeys galois_keys(const std::vector<int>& steps);

  /// Galois element implementing a left rotation by `steps` slots.
  u64 galois_element(int steps) const;

 private:
  /// Builds a key-switching key for target secret `w` (NTT form, full basis).
  KSwitchKey make_kswitch_key(const RnsPoly& w_ntt);

  const CkksContext* ctx_;
  sp::Rng rng_;
  SecretKey sk_;
};

/// Applies the Galois automorphism X -> X^g to a coefficient-form polynomial.
RnsPoly apply_galois(const RnsPoly& coeff_poly, u64 galois_elt);

/// Index table applying X -> X^g directly on NTT-form rows: out[j] =
/// in[table[j]]. NTT slot j holds the evaluation at psi^(2*brev(j)+1), and
/// the automorphism permutes evaluation points without sign corrections, so
/// permuting by this table equals NTT(apply_galois(iNTT(x))) bit for bit.
/// This is what makes key-switch hoisting pay: decomposition digits are
/// NTT'd once and re-permuted per rotation instead of re-decomposed.
/// Tables depend only on (n, g) and are memoized process-wide (thread-safe;
/// the returned reference stays valid for the process lifetime).
const std::vector<std::uint32_t>& galois_ntt_table(std::size_t n, u64 galois_elt);

/// Applies the Galois automorphism to an NTT-form polynomial via the table.
RnsPoly apply_galois_ntt(const RnsPoly& ntt_poly, u64 galois_elt);

}  // namespace sp::fhe
