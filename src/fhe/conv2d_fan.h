#pragma once

#include <cstdint>
#include <vector>

#include "fhe/encoder.h"
#include "fhe/evaluator.h"

namespace sp::fhe {

/// Geometry of one channel-packed 2-D convolution under the grid slot
/// layout: input element (c, y, x) lives at slot
///   c * ch_stride + y * row_stride + x * elem_stride
/// and the output is written AT THE ANCHOR positions of the same grid —
/// output element (oc, oy, ox) lands at
///   oc * ch_stride + oy * (row_stride * stride) + ox * (elem_stride * stride),
/// so strided convolutions compose without any repacking stage: the output
/// is just a sparser grid with the same channel stride.
///
/// The key identity: the conv term (oc, ic, dy, dx) reads input slot
/// out_pos + shift with the CONSTANT shift
///   shift = (ic - oc) * ch_stride + dy * row_stride + dx * elem_stride,
/// independent of (oy, ox) — so one rotation serves every output position
/// and every (oc, ic) pair with the same channel offset c = ic - oc, exactly
/// like an extended diagonal in the Halevi–Shoup method. Valid (pad = 0)
/// convolutions only: every masked slot's rotation source stays inside the
/// grid extent, so the cyclic slot rotation never drags in foreign data.
struct ConvGeom {
  int in_channels = 0;
  int out_channels = 0;
  int height = 0;      ///< input spatial rows
  int width = 0;       ///< input spatial columns
  int kernel = 1;      ///< square kernel side
  int stride = 1;      ///< spatial stride (>= 1)
  int ch_stride = 0;   ///< slots between consecutive channel planes
  int row_stride = 0;  ///< slots between consecutive grid rows
  int elem_stride = 1; ///< slots between consecutive grid columns

  int out_h() const { return (height - kernel) / stride + 1; }
  int out_w() const { return (width - kernel) / stride + 1; }
  int out_row_stride() const { return row_stride * stride; }
  int out_elem_stride() const { return elem_stride * stride; }
  /// Slots a `channels`-plane block of this grid spans.
  int extent(int channels) const {
    return (channels - 1) * ch_stride + (height - 1) * row_stride +
           (width - 1) * elem_stride + 1;
  }
  /// Throws unless the grid is collision-free (rows fit inside a channel
  /// plane, columns inside a row) and the kernel fits the image.
  void validate() const;
};

/// One planned conv term group: all (oc, ic) pairs at channel offset `c`
/// sharing kernel tap (dy, dx) — one rotation + one mask multiplication.
struct ConvTerm {
  int c = 0;      ///< local channel offset ic_local - oc_local
  int dy = 0;     ///< kernel row tap
  int dx = 0;     ///< kernel column tap
  int shift = 0;  ///< full slot shift of the term
  int giant = 0;  ///< giant slot rotation (0 in fan mode); baby = shift - giant
};

/// Pure index-math schedule of one (output-block, input-block) pair of a
/// channel-packed convolution.
///
/// Two modes, the planner's "fan vs. diagonal" choice:
///  - n1 == 0 (rotation fan): every distinct term shift is its own rotation
///    from the input — the im2col-style window fan, ~span * k^2 rotations
///    (span = channel-offset span), all hoistable from one decomposition.
///  - n1 >= 1 (BSGS over the channel offset): c splits as g + b with
///    b in [0, n1); babies b * ch_stride + dy * row_stride + dx * elem_stride
///    are shared across channel groups (<= n1 * k^2, hoistable) and each
///    giant group rotates once by g * ch_stride with its masks pre-rotated
///    at encode time. At >= 8 channels this rotates several times less than
///    the fan.
struct Conv2dFanPlan {
  /// @brief Plans the pair covering output channels [oc_lo, oc_hi) and
  /// input channels [ic_lo, ic_hi) of the full [out][in][k][k] weights.
  /// Terms with all-zero weights are skipped. n1 == 0 selects fan mode.
  static Conv2dFanPlan make(const std::vector<double>& weights, const ConvGeom& g,
                            int oc_lo, int oc_hi, int ic_lo, int ic_hi, int n1);

  std::vector<ConvTerm> terms;   ///< grouped by giant, ascending schedule order
  std::vector<int> baby_steps;   ///< distinct nonzero baby rotations, ascending
  std::vector<int> giant_steps;  ///< distinct nonzero giant rotations, ascending
  int n1 = 0;                    ///< 0 = rotation fan, >= 1 = BSGS block size
  int mask_mults = 0;            ///< plaintext multiplications (== terms.size())

  int rotations() const {
    return static_cast<int>(baby_steps.size() + giant_steps.size());
  }
  /// @brief Union of every rotation step the pair needs (keygen).
  std::vector<int> steps() const;
};

/// Executes a planned channel-packed convolution on a (possibly
/// multi-ciphertext) grid: per input block one optionally hoisted baby fan
/// shared across every output block it feeds, one cached plaintext mask per
/// term, one naive rotation per giant group, partial-sum joins by ciphertext
/// addition across input blocks, a single rescale per output block, and an
/// optional per-channel bias — consuming exactly one level, zero
/// relinearizations.
///
/// Block layout: channels split into `chans_per_block`-channel blocks
/// (input block bi holds input channels [bi * cpb, ...), output block bo
/// likewise), so widths beyond the slot extent split into column blocks.
/// With `tile` < slot_count the layout repeats per tile (BatchRunner
/// packing); masks and bias replicate per tile like DiagonalMatVec.
class ConvChannelFan {
 public:
  /// @param enc      encoder owning the plaintext cache
  /// @param weights  [out_ch][in_ch][k][k] kernel, row-major
  /// @param bias     empty, or one value per output channel
  /// @param geom     grid geometry (validated)
  /// @param n1       0 = rotation fan, >= 1 = BSGS channel block size
  /// @param tile     slot-layout repeat stride; 0 = one layout over all slots
  /// @param chans_per_block  channels per ciphertext block (both sides)
  ConvChannelFan(const Encoder& enc, std::vector<double> weights,
                 std::vector<double> bias, const ConvGeom& geom, int n1,
                 std::size_t tile, int chans_per_block);

  const ConvGeom& geom() const { return geom_; }
  int blocks_in() const { return blocks_in_; }
  int blocks_out() const { return blocks_out_; }
  /// @brief The planned (bo, bi) pair; nullptr when no nonzero term links
  /// the two blocks.
  const Conv2dFanPlan* pair_plan(int bo, int bi) const;
  /// @brief Distinct baby steps input block `bi` fans out to (union over
  /// every output block it feeds) — what one hoisted decomposition serves.
  std::vector<int> fan_steps(int bi) const;
  /// @brief Union of every rotation step apply() executes (keygen).
  std::vector<int> all_steps() const;
  /// @brief Total plaintext mask multiplications across all pairs.
  int total_masks() const;

  /// @brief y = conv(x) (+ bias), one level below the inputs.
  /// @param ev     evaluator to run on
  /// @param in     blocks_in() 2-part ciphertexts at equal level/scale
  /// @param gk     rotation keys covering all_steps()
  /// @param hoist  route each input block's fan through one decomposition
  /// @param scale  encoding scale for the mask plaintexts (Delta)
  std::vector<Ciphertext> apply(Evaluator& ev, const std::vector<Ciphertext>& in,
                                const GaloisKeys& gk, bool hoist,
                                double scale) const;

 private:
  /// Mask of term `t` of pair (bo, bi), pre-rotated by its giant and tiled:
  /// weight w[oc][oc + offset][dy][dx] at every valid output anchor.
  std::vector<double> mask_slots(int bo, int bi, const ConvTerm& t) const;

  const Encoder* enc_;
  std::vector<double> weights_;
  std::vector<double> bias_;
  ConvGeom geom_;
  std::size_t tile_;
  int cpb_;
  int blocks_in_;
  int blocks_out_;
  std::uint64_t fingerprint_;  ///< encode_cached key base (content hash)
  std::vector<Conv2dFanPlan> pairs_;  ///< blocks_out x blocks_in, row-major
};

}  // namespace sp::fhe
