#include "fhe/context.h"

#include <cmath>

#include "common/check.h"
#include "fhe/primes.h"

namespace sp::fhe {

CkksParams CkksParams::for_depth(std::size_t n, int depth, int scale_bits) {
  CkksParams p;
  p.poly_degree = n;
  p.q_bits.assign(1, 60);
  for (int i = 0; i < depth; ++i) p.q_bits.push_back(scale_bits);
  p.special_bits = 60;
  p.scale = std::ldexp(1.0, scale_bits);
  return p;
}

CkksParams CkksParams::test_small() {
  CkksParams p = for_depth(2048, 3, 30);
  p.q_bits[0] = 40;
  p.special_bits = 40;
  p.scale = std::ldexp(1.0, 30);
  return p;
}

CkksParams CkksParams::paper_paf() { return for_depth(32768, 12, 40); }

CkksContext::CkksContext(const CkksParams& params) : params_(params) {
  const std::size_t n = params_.poly_degree;
  sp::check(n >= 8 && (n & (n - 1)) == 0, "CkksContext: N must be a power of two");
  sp::check(!params_.q_bits.empty(), "CkksContext: empty modulus chain");

  // Generate distinct primes; group requests by bit size to avoid collisions.
  std::vector<u64> taken;
  auto take = [&](int bits) {
    const auto got = generate_ntt_primes(bits, 1, n, taken);
    taken.push_back(got[0]);
    return got[0];
  };
  for (int bits : params_.q_bits) {
    const u64 q = take(bits);
    q_mods_.emplace_back(q);
  }
  special_mod_ = Modulus(take(params_.special_bits));
  sp::check(special_mod_.value() >= q_mods_.back().value(),
            "CkksContext: special prime should be at least as large as chain primes");

  for (const auto& m : q_mods_) q_ntt_.push_back(std::make_unique<NttTables>(n, m));
  special_ntt_ = std::make_unique<NttTables>(n, special_mod_);

  const int L = q_count();
  q_inv_mod_.assign(static_cast<std::size_t>(L), std::vector<u64>(static_cast<std::size_t>(L), 0));
  for (int last = 0; last < L; ++last) {
    for (int i = 0; i < L; ++i) {
      if (i == last) continue;
      q_inv_mod_[static_cast<std::size_t>(last)][static_cast<std::size_t>(i)] =
          q(i).inv(q(last).value() % q(i).value());
    }
  }
  p_inv_mod_.resize(static_cast<std::size_t>(L));
  p_mod_.resize(static_cast<std::size_t>(L));
  for (int i = 0; i < L; ++i) {
    p_mod_[static_cast<std::size_t>(i)] = special_mod_.value() % q(i).value();
    p_inv_mod_[static_cast<std::size_t>(i)] = q(i).inv(p_mod_[static_cast<std::size_t>(i)]);
  }
  garner_inv_.resize(static_cast<std::size_t>(L));
  for (int j = 0; j < L; ++j) {
    u64 prod = 1;
    for (int k = 0; k < j; ++k) prod = q(j).mul(prod, q(k).value() % q(j).value());
    garner_inv_[static_cast<std::size_t>(j)] = j == 0 ? 1 : q(j).inv(prod);
  }
}

u64 CkksContext::q_inv_mod(int last, int i) const {
  return q_inv_mod_[static_cast<std::size_t>(last)][static_cast<std::size_t>(i)];
}

long double CkksContext::q_prod_ld(int level) const {
  long double p = 1.0L;
  for (int i = 0; i <= level; ++i) p *= static_cast<long double>(q(i).value());
  return p;
}

}  // namespace sp::fhe
