#include "fhe/primes.h"

#include <algorithm>

#include "common/check.h"

namespace sp::fhe {
namespace {

u64 mulmod(u64 a, u64 b, u64 m) { return static_cast<u64>(static_cast<u128>(a) * b % m); }

u64 powmod(u64 a, u64 e, u64 m) {
  u64 r = 1;
  a %= m;
  while (e) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is deterministic for n < 2^64 (Sorenson & Webster).
  for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    u64 x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int r = 1; r < s; ++r) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::vector<u64> generate_ntt_primes(int bits, int count, std::size_t n,
                                     const std::vector<u64>& exclude) {
  sp::check(bits >= 20 && bits <= 61, "generate_ntt_primes: bits in [20,61]");
  const u64 two_n = static_cast<u64>(2 * n);
  std::vector<u64> primes;
  // Largest candidate of the form k*2n + 1 below 2^bits.
  u64 candidate = ((((1ULL << bits) - 1) / two_n) * two_n) + 1;
  while (static_cast<int>(primes.size()) < count && candidate > (1ULL << (bits - 1))) {
    if (is_prime(candidate) &&
        std::find(exclude.begin(), exclude.end(), candidate) == exclude.end()) {
      primes.push_back(candidate);
    }
    candidate -= two_n;
  }
  sp::check(static_cast<int>(primes.size()) == count,
            "generate_ntt_primes: not enough primes of requested size");
  return primes;
}

u64 find_primitive_root(u64 q, std::size_t two_n) {
  sp::check((q - 1) % two_n == 0, "find_primitive_root: q != 1 mod 2n");
  const u64 group_order = q - 1;
  const u64 quotient = group_order / two_n;
  const Modulus mod(q);
  // Try small bases; g = a^quotient has order dividing 2n; accept when the
  // order is exactly 2n, i.e. g^n == -1.
  for (u64 a = 2; a < 2000; ++a) {
    const u64 g = mod.pow(a, quotient);
    if (mod.pow(g, static_cast<u64>(two_n / 2)) == q - 1) return g;
  }
  throw sp::Error("find_primitive_root: no generator found");
}

}  // namespace sp::fhe
