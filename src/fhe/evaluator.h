#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "fhe/encryptor.h"
#include "fhe/keys.h"

namespace sp::fhe {

/// Running tally of homomorphic operations (latency accounting for the
/// paper's cost model: ct-ct multiplications + relinearizations dominate).
///
/// Fields are relaxed atomics: evaluator internals fan work out across the
/// SMARTPAF_THREADS pool (key-switch digits tally their NTTs from inside the
/// parallel region), so plain increments would race and drop counts. Atomic
/// tallies keep every total exactly thread-count-invariant. Copying takes a
/// snapshot.
struct OpCounters {
  std::atomic<std::size_t> adds{0};
  std::atomic<std::size_t> plain_mults{0};
  std::atomic<std::size_t> ct_mults{0};
  std::atomic<std::size_t> relins{0};
  std::atomic<std::size_t> rescales{0};
  std::atomic<std::size_t> rotations{0};
  /// Rotations served from a HoistedDecomposition (also counted in
  /// `rotations`): these skip the per-rotation digit decomposition.
  std::atomic<std::size_t> hoisted_rotations{0};
  /// Per-row forward/inverse NTTs issued by evaluator operations — the
  /// hoisting win shows up here: a hoisted rotation fan performs strictly
  /// fewer forward NTTs than the same fan of naive rotations.
  std::atomic<std::size_t> ntts_forward{0};
  std::atomic<std::size_t> ntts_inverse{0};

  /// The one authoritative field list: every helper that walks the tallies
  /// (assignment, delta, per-input division) goes through here, so a new
  /// counter added to the struct and to this list is picked up everywhere.
  /// `fn` receives (destination atomic of `dst`, same field of `src`).
  template <typename Fn>
  static void zip_fields(OpCounters& dst, const OpCounters& src, const Fn& fn) {
    fn(dst.adds, src.adds);
    fn(dst.plain_mults, src.plain_mults);
    fn(dst.ct_mults, src.ct_mults);
    fn(dst.relins, src.relins);
    fn(dst.rescales, src.rescales);
    fn(dst.rotations, src.rotations);
    fn(dst.hoisted_rotations, src.hoisted_rotations);
    fn(dst.ntts_forward, src.ntts_forward);
    fn(dst.ntts_inverse, src.ntts_inverse);
  }

  OpCounters() = default;
  OpCounters(const OpCounters& o) { *this = o; }
  OpCounters& operator=(const OpCounters& o) {
    zip_fields(*this, o, [](std::atomic<std::size_t>& d, const std::atomic<std::size_t>& s) {
      d = s.load();
    });
    return *this;
  }

  /// @brief Resets every tally to zero.
  void reset() { *this = OpCounters(); }

  /// @brief Counter increments since a `baseline` snapshot (this - baseline).
  ///
  /// The usual pattern for scoping counters to one pipeline: copy the
  /// counters before, run, then diff. Every field of `baseline` must be
  /// <= the corresponding field here (counters only grow).
  /// @param baseline  snapshot taken before the measured region
  /// @return per-field differences as a fresh OpCounters snapshot
  OpCounters delta_since(const OpCounters& baseline) const {
    OpCounters d = *this;
    zip_fields(d, baseline, [](std::atomic<std::size_t>& v, const std::atomic<std::size_t>& b) {
      v = v.load() - b.load();
    });
    return d;
  }
};

/// Amortized per-input view of an OpCounters span: when one packed
/// ciphertext serves `batch_size` requests (BatchRunner slot packing), the
/// whole-ciphertext op counts divide across the batch. These are the
/// figures that make latency-vs-throughput tables honest: a rotation fan or
/// relinearization paid once per ciphertext costs 1/B of itself per request.
struct OpCountersPerInput {
  double adds = 0.0;
  double plain_mults = 0.0;
  double ct_mults = 0.0;
  double relins = 0.0;
  double rescales = 0.0;
  double rotations = 0.0;
  double hoisted_rotations = 0.0;
  double ntts_forward = 0.0;
  double ntts_inverse = 0.0;
};

/// @brief Divides an OpCounters span by `batch_size` packed inputs.
/// @param c  counter deltas covering one packed-ciphertext pipeline
/// @param batch_size  number of requests the ciphertext carried (>= 1)
/// @return each tally as a per-input double
inline OpCountersPerInput per_input(const OpCounters& c, int batch_size) {
  const double b = batch_size < 1 ? 1.0 : static_cast<double>(batch_size);
  OpCountersPerInput out;
  out.adds = static_cast<double>(c.adds.load()) / b;
  out.plain_mults = static_cast<double>(c.plain_mults.load()) / b;
  out.ct_mults = static_cast<double>(c.ct_mults.load()) / b;
  out.relins = static_cast<double>(c.relins.load()) / b;
  out.rescales = static_cast<double>(c.rescales.load()) / b;
  out.rotations = static_cast<double>(c.rotations.load()) / b;
  out.hoisted_rotations = static_cast<double>(c.hoisted_rotations.load()) / b;
  out.ntts_forward = static_cast<double>(c.ntts_forward.load()) / b;
  out.ntts_inverse = static_cast<double>(c.ntts_inverse.load()) / b;
  return out;
}

/// One-time key-switch decomposition of a ciphertext, reusable across many
/// rotations of the same input ("hoisting"). The decomposition digits are
/// lifted to the extended basis and NTT'd once; each rotation then only
/// permutes the cached digits in the NTT domain (a slot shuffle) before the
/// key inner product — the classic 2-3x saving for rotation fans (BSGS baby
/// steps, conv im2col, pooling).
struct HoistedDecomposition {
  Ciphertext src;               ///< decomposed ciphertext (returned for step 0)
  std::vector<RnsPoly> digits;  ///< NTT form over chain + special rows
};

/// Leveled CKKS evaluator: arithmetic, rescaling, relinearization via hybrid
/// key-switching with one special prime, and slot rotations.
///
/// Conventions: ciphertext parts are kept in NTT form; `level` = q_count-1
/// counts remaining rescales; scales are tracked as exact doubles and
/// addition requires operands within 1e-6 relative scale mismatch.
///
/// Hot loops (NTT batches, key-switch digit decomposition, per-row inner
/// products) run on the SMARTPAF_THREADS pool; results are bit-identical for
/// every thread count.
class Evaluator {
 public:
  /// @brief Binds the evaluator to a context; no key material is held (keys
  /// are passed per operation).
  /// @param ctx  precomputed CKKS context (must outlive the evaluator)
  explicit Evaluator(const CkksContext& ctx) : ctx_(&ctx) {}

  /// @brief The context this evaluator operates under.
  const CkksContext& context() const { return *ctx_; }

  /// @brief Drops chain primes (without scaling) until the ciphertext sits
  /// at `level`; no-op if already there. Used to align operands.
  /// @param ct     ciphertext to truncate in place
  /// @param level  target level, must be <= ct.level()
  void drop_to_level(Ciphertext& ct, int level) const;

  /// @brief Drops the higher-level operand so both sit at the same level.
  /// @param a  first operand (may be truncated in place)
  /// @param b  second operand (may be truncated in place)
  void match_levels(Ciphertext& a, Ciphertext& b) const;

  /// @brief Slot-wise a + b. Operands must share level and (within 1e-6
  /// relative) scale.
  /// @return 2-part sum at the common level/scale
  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;

  /// @brief Slot-wise a - b under the same preconditions as add().
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;

  /// @brief Negates every slot in place (any part count, any level).
  void negate_inplace(Ciphertext& ct) const;

  /// @brief a += b with part-count mismatch support: a 2-part and a 3-part
  /// (pre-relinearization) operand add by zero-padding the shorter one, so
  /// the sum keeps the larger part count. This is what lets lazy
  /// relinearization accumulate BSGS block sums in 3-part form and pay a
  /// single relinearization per join.
  /// @param a  accumulator; grows to 3 parts if either operand has 3
  /// @param b  addend at the same level/scale as `a`
  void add_inplace(Ciphertext& a, const Ciphertext& b) const;

  /// @brief ct += pt (plaintext at the same level/scale).
  void add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;

  /// @brief ct *= pt slot-wise; scale multiplies (rescale afterwards to
  /// return to ~Delta). Works for 2- and 3-part ciphertexts.
  void multiply_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;

  /// @brief Tensor product of two 2-part ciphertexts.
  /// @param a  left factor
  /// @param b  right factor at the same level (use match_levels)
  /// @return 3-part product with scale = a.scale * b.scale; relinearize (or
  ///         accumulate via add_inplace) before any further multiplication
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;

  /// @brief Explicit lazy-relinearization spelling of multiply(): the 3-part
  /// result is meant to be accumulated with add_inplace() and relinearized
  /// once at the join instead of once per product.
  Ciphertext multiply_no_relin(const Ciphertext& a, const Ciphertext& b) const {
    return multiply(a, b);
  }

  /// @brief Switches the quadratic part back to the canonical basis
  /// (3 parts -> 2). No-op input is an error: `ct` must have 3 parts.
  /// @param ct  3-part ciphertext, relinearized in place
  /// @param rk  relinearization key (key-switching key for s^2)
  void relinearize_inplace(Ciphertext& ct, const KSwitchKey& rk) const;

  /// @brief Divides by the last chain prime: level decreases by 1 and
  /// scale /= q_last. Works for 2- and 3-part ciphertexts.
  void rescale_inplace(Ciphertext& ct) const;

  /// @brief Rotates slots left by `steps` (Galois automorphism + key
  /// switch).
  /// @param ct     2-part source ciphertext
  /// @param steps  slot offset (negative = right rotation); a key for
  ///               galois_element(steps) must exist in `gk`
  /// @param gk     rotation keys
  /// @return rotated ciphertext at the same level/scale
  Ciphertext rotate(const Ciphertext& ct, int steps, const GaloisKeys& gk) const;

  /// @brief Computes the key-switch digit decomposition of `ct` once, for
  /// reuse across a fan of rotations of the same input.
  /// @param ct  2-part ciphertext to decompose
  /// @return decomposition handle to pass to rotate_hoisted()
  HoistedDecomposition hoist(const Ciphertext& ct) const;

  /// @brief Rotation from a hoisted decomposition: bit-identical to
  /// `rotate(h.src, steps, gk)` while skipping the per-rotation digit
  /// decomposition and the c0 NTT round-trip entirely.
  /// @param h      decomposition from hoist()
  /// @param steps  slot offset (step 0 returns h.src unchanged)
  /// @param gk     rotation keys covering galois_element(steps)
  Ciphertext rotate_hoisted(const HoistedDecomposition& h, int steps,
                            const GaloisKeys& gk) const;

  /// @brief Hoisted rotation fan: decomposes once, applies every step's
  /// Galois key to the shared digits.
  /// @param ct     2-part source ciphertext
  /// @param steps  fan of slot offsets
  /// @param gk     rotation keys covering every step
  /// @return one rotated ciphertext per step, in `steps` order
  std::vector<Ciphertext> rotate_hoisted(const Ciphertext& ct,
                                         const std::vector<int>& steps,
                                         const GaloisKeys& gk) const;

  /// @brief Galois element implementing a left rotation by `steps` slots.
  u64 galois_element(int steps) const;

  mutable OpCounters counters;

 private:
  /// Lifts each chain-prime residue row of `d_coeff` into the extended basis
  /// Q ∪ {P} and NTTs it: the hoistable half of hybrid key switching.
  std::vector<RnsPoly> decompose_digits(const RnsPoly& d_coeff) const;

  /// Inner product of the digits with a key-switching key, followed by the
  /// P mod-down; `ntt_perm`, when non-null, applies a Galois slot permutation
  /// to every digit on the fly (hoisted rotations).
  std::pair<RnsPoly, RnsPoly> apply_kswitch(const std::vector<RnsPoly>& digits,
                                            const KSwitchKey& key,
                                            const std::uint32_t* ntt_perm) const;

  /// Key-switches `d` (coefficient form, q_count chain rows) and returns the
  /// two NTT-form correction polynomials over the same q_count rows.
  std::pair<RnsPoly, RnsPoly> key_switch(const RnsPoly& d_coeff,
                                         const KSwitchKey& key) const;

  /// Divides an extended-basis polynomial by the special prime P with
  /// centered rounding, returning to chain rows in NTT form.
  void mod_down(RnsPoly& r) const;

  const CkksContext* ctx_;
};

}  // namespace sp::fhe
