#pragma once

#include <utility>

#include "fhe/encryptor.h"
#include "fhe/keys.h"

namespace sp::fhe {

/// Running tally of homomorphic operations (latency accounting for the
/// paper's cost model: ct-ct multiplications + relinearizations dominate).
struct OpCounters {
  std::size_t adds = 0;
  std::size_t plain_mults = 0;
  std::size_t ct_mults = 0;
  std::size_t relins = 0;
  std::size_t rescales = 0;
  std::size_t rotations = 0;
};

/// Leveled CKKS evaluator: arithmetic, rescaling, relinearization via hybrid
/// key-switching with one special prime, and slot rotations.
///
/// Conventions: ciphertext parts are kept in NTT form; `level` = q_count-1
/// counts remaining rescales; scales are tracked as exact doubles and
/// addition requires operands within 1e-6 relative scale mismatch.
class Evaluator {
 public:
  explicit Evaluator(const CkksContext& ctx) : ctx_(&ctx) {}

  const CkksContext& context() const { return *ctx_; }

  /// Drops chain primes (without scaling) until the ciphertext sits at
  /// `level`; no-op if already there. Used to align operands.
  void drop_to_level(Ciphertext& ct, int level) const;

  /// Drops the higher-level operand so both match.
  void match_levels(Ciphertext& a, Ciphertext& b) const;

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& ct) const;

  void add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;
  void multiply_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;

  /// Tensor product; result has 3 parts and scale = sa * sb. Operands must
  /// be at the same level (use match_levels).
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;

  /// Switches the quadratic part back to the canonical basis (size 3 -> 2).
  void relinearize_inplace(Ciphertext& ct, const KSwitchKey& rk) const;

  /// Divides by the last chain prime: level-1, scale /= q_last.
  void rescale_inplace(Ciphertext& ct) const;

  /// Rotates slots left by `steps` (Galois automorphism + key switch).
  Ciphertext rotate(const Ciphertext& ct, int steps, const GaloisKeys& gk) const;

  /// Galois element for a left rotation by `steps` slots.
  u64 galois_element(int steps) const;

  mutable OpCounters counters;

 private:
  /// Key-switches `d` (coefficient form, q_count chain rows) and returns the
  /// two NTT-form correction polynomials over the same q_count rows.
  std::pair<RnsPoly, RnsPoly> key_switch(const RnsPoly& d_coeff,
                                         const KSwitchKey& key) const;

  const CkksContext* ctx_;
};

}  // namespace sp::fhe
