#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "fhe/encryptor.h"
#include "fhe/keys.h"

namespace sp::fhe {

/// Running tally of homomorphic operations (latency accounting for the
/// paper's cost model: ct-ct multiplications + relinearizations dominate).
///
/// Fields are relaxed atomics: evaluator internals fan work out across the
/// SMARTPAF_THREADS pool (key-switch digits tally their NTTs from inside the
/// parallel region), so plain increments would race and drop counts. Atomic
/// tallies keep every total exactly thread-count-invariant. Copying takes a
/// snapshot.
struct OpCounters {
  std::atomic<std::size_t> adds{0};
  std::atomic<std::size_t> plain_mults{0};
  std::atomic<std::size_t> ct_mults{0};
  std::atomic<std::size_t> relins{0};
  std::atomic<std::size_t> rescales{0};
  std::atomic<std::size_t> rotations{0};
  /// Rotations served from a HoistedDecomposition (also counted in
  /// `rotations`): these skip the per-rotation digit decomposition.
  std::atomic<std::size_t> hoisted_rotations{0};
  /// Per-row forward/inverse NTTs issued by evaluator operations — the
  /// hoisting win shows up here: a hoisted rotation fan performs strictly
  /// fewer forward NTTs than the same fan of naive rotations.
  std::atomic<std::size_t> ntts_forward{0};
  std::atomic<std::size_t> ntts_inverse{0};

  OpCounters() = default;
  OpCounters(const OpCounters& o) { *this = o; }
  OpCounters& operator=(const OpCounters& o) {
    adds = o.adds.load();
    plain_mults = o.plain_mults.load();
    ct_mults = o.ct_mults.load();
    relins = o.relins.load();
    rescales = o.rescales.load();
    rotations = o.rotations.load();
    hoisted_rotations = o.hoisted_rotations.load();
    ntts_forward = o.ntts_forward.load();
    ntts_inverse = o.ntts_inverse.load();
    return *this;
  }

  void reset() { *this = OpCounters(); }
};

/// One-time key-switch decomposition of a ciphertext, reusable across many
/// rotations of the same input ("hoisting"). The decomposition digits are
/// lifted to the extended basis and NTT'd once; each rotation then only
/// permutes the cached digits in the NTT domain (a slot shuffle) before the
/// key inner product — the classic 2-3x saving for rotation fans (BSGS baby
/// steps, conv im2col, pooling).
struct HoistedDecomposition {
  Ciphertext src;               ///< decomposed ciphertext (returned for step 0)
  std::vector<RnsPoly> digits;  ///< NTT form over chain + special rows
};

/// Leveled CKKS evaluator: arithmetic, rescaling, relinearization via hybrid
/// key-switching with one special prime, and slot rotations.
///
/// Conventions: ciphertext parts are kept in NTT form; `level` = q_count-1
/// counts remaining rescales; scales are tracked as exact doubles and
/// addition requires operands within 1e-6 relative scale mismatch.
///
/// Hot loops (NTT batches, key-switch digit decomposition, per-row inner
/// products) run on the SMARTPAF_THREADS pool; results are bit-identical for
/// every thread count.
class Evaluator {
 public:
  explicit Evaluator(const CkksContext& ctx) : ctx_(&ctx) {}

  const CkksContext& context() const { return *ctx_; }

  /// Drops chain primes (without scaling) until the ciphertext sits at
  /// `level`; no-op if already there. Used to align operands.
  void drop_to_level(Ciphertext& ct, int level) const;

  /// Drops the higher-level operand so both match.
  void match_levels(Ciphertext& a, Ciphertext& b) const;

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& ct) const;

  /// a += b with size-mismatch support: a 2-part and a 3-part (pre-relin)
  /// operand add by zero-padding the shorter one. This is what lets lazy
  /// relinearization accumulate BSGS block sums in 3-part form and pay for a
  /// single relinearization per join.
  void add_inplace(Ciphertext& a, const Ciphertext& b) const;

  void add_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;
  void multiply_plain_inplace(Ciphertext& ct, const Plaintext& pt) const;

  /// Tensor product; result has 3 parts and scale = sa * sb. Operands must
  /// be at the same level (use match_levels).
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;

  /// Explicit lazy-relinearization spelling of `multiply`: the 3-part result
  /// is meant to be accumulated with `add_inplace` and relinearized once at
  /// the join instead of once per product.
  Ciphertext multiply_no_relin(const Ciphertext& a, const Ciphertext& b) const {
    return multiply(a, b);
  }

  /// Switches the quadratic part back to the canonical basis (size 3 -> 2).
  void relinearize_inplace(Ciphertext& ct, const KSwitchKey& rk) const;

  /// Divides by the last chain prime: level-1, scale /= q_last.
  void rescale_inplace(Ciphertext& ct) const;

  /// Rotates slots left by `steps` (Galois automorphism + key switch).
  Ciphertext rotate(const Ciphertext& ct, int steps, const GaloisKeys& gk) const;

  /// Computes the key-switch decomposition of `ct` once, for reuse across a
  /// fan of rotations (`ct` must be 2-part).
  HoistedDecomposition hoist(const Ciphertext& ct) const;

  /// Rotation from a hoisted decomposition: bit-identical to
  /// `rotate(h.src, steps, gk)` while skipping the per-rotation digit
  /// decomposition and the c0 NTT round-trip entirely.
  Ciphertext rotate_hoisted(const HoistedDecomposition& h, int steps,
                            const GaloisKeys& gk) const;

  /// Hoisted rotation fan: decomposes once, applies every step's Galois key
  /// to the shared digits.
  std::vector<Ciphertext> rotate_hoisted(const Ciphertext& ct,
                                         const std::vector<int>& steps,
                                         const GaloisKeys& gk) const;

  /// Galois element for a left rotation by `steps` slots.
  u64 galois_element(int steps) const;

  mutable OpCounters counters;

 private:
  /// Lifts each chain-prime residue row of `d_coeff` into the extended basis
  /// Q ∪ {P} and NTTs it: the hoistable half of hybrid key switching.
  std::vector<RnsPoly> decompose_digits(const RnsPoly& d_coeff) const;

  /// Inner product of the digits with a key-switching key, followed by the
  /// P mod-down; `ntt_perm`, when non-null, applies a Galois slot permutation
  /// to every digit on the fly (hoisted rotations).
  std::pair<RnsPoly, RnsPoly> apply_kswitch(const std::vector<RnsPoly>& digits,
                                            const KSwitchKey& key,
                                            const std::uint32_t* ntt_perm) const;

  /// Key-switches `d` (coefficient form, q_count chain rows) and returns the
  /// two NTT-form correction polynomials over the same q_count rows.
  std::pair<RnsPoly, RnsPoly> key_switch(const RnsPoly& d_coeff,
                                         const KSwitchKey& key) const;

  /// Divides an extended-basis polynomial by the special prime P with
  /// centered rounding, returning to chain rows in NTT form.
  void mod_down(RnsPoly& r) const;

  const CkksContext* ctx_;
};

}  // namespace sp::fhe
