#pragma once

#include <cstddef>
#include <vector>

#include "fhe/modarith.h"

namespace sp::fhe {

/// Negacyclic number-theoretic transform over Z_q[X]/(X^n + 1).
///
/// Implements the Longa-Naehrig/Harvey formulation: Cooley-Tukey butterflies
/// for the forward transform and Gentleman-Sande for the inverse, with root
/// powers stored in bit-reversed order and Shoup-precomputed companions for
/// lazy (< 4q) butterfly arithmetic. Multiplication of ring elements becomes
/// pointwise multiplication between forward transforms.
class NttTables {
 public:
  NttTables(std::size_t n, Modulus mod);

  std::size_t n() const { return n_; }
  const Modulus& modulus() const { return mod_; }

  /// In-place forward NTT; input/output fully reduced (< q).
  void forward(u64* a) const;

  /// In-place inverse NTT (includes the 1/n scaling); output < q.
  void inverse(u64* a) const;

 private:
  std::size_t n_;
  int log_n_;
  Modulus mod_;
  std::vector<u64> roots_, roots_shoup_;          // psi^brev(i)
  std::vector<u64> inv_roots_, inv_roots_shoup_;  // psi^-brev(i)
  u64 n_inv_ = 0, n_inv_shoup_ = 0;
};

}  // namespace sp::fhe
