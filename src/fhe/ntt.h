#pragma once

#include <cstddef>
#include <vector>

#include "fhe/modarith.h"

namespace sp::fhe {

/// Negacyclic number-theoretic transform over Z_q[X]/(X^n + 1).
///
/// Implements the Longa-Naehrig/Harvey formulation: Cooley-Tukey butterflies
/// for the forward transform and Gentleman-Sande for the inverse, with root
/// powers stored in bit-reversed order and Shoup-precomputed companions for
/// lazy (< 4q) butterfly arithmetic. Multiplication of ring elements becomes
/// pointwise multiplication between forward transforms.
///
/// The butterfly stages run through the dispatched SIMD kernel layer
/// (fhe/simd/) — scalar, AVX2, or AVX-512 — with bit-identical results on
/// every tier. Tables are built in O(n) multiplies (iterated root powers
/// scattered into bit-reversed order), so large-N table construction — the
/// keygen-less session-adoption cold-start cost — stays cheap.
class NttTables {
 public:
  NttTables(std::size_t n, Modulus mod);

  std::size_t n() const { return n_; }
  const Modulus& modulus() const { return mod_; }

  /// In-place forward NTT; input/output fully reduced (< q).
  void forward(u64* a) const;

  /// In-place inverse NTT (includes the 1/n scaling); output < q.
  void inverse(u64* a) const;

 private:
  // --- Sub-row decomposition used by the batched entry points below.
  //
  // After the first log2(split) forward stages the row decomposes into
  // `split` independent contiguous sub-transforms of length n/split; the
  // inverse mirrors this (independent heads, then log2(split) joining
  // stages). These helpers run the pieces; ntt_forward_batch /
  // ntt_inverse_batch schedule them across (row x block) tiles.

  /// Forward stage s (block count 2^s, t = n >> (s+1)) over butterfly range
  /// [off, off+len) of block `b` of the full row.
  void forward_stage_part(u64* a, int s, std::size_t b, std::size_t off,
                          std::size_t len) const;
  /// All forward stages from stage log2(split) on, restricted to
  /// sub-transform `sub` (a_sub points at its first element), including the
  /// final 4q -> q reduction of that range.
  void forward_tail(u64* a_sub, std::size_t sub, std::size_t split) const;
  /// All inverse stages strictly before the joining stages: the complete
  /// independent inverse of sub-transform `sub` (no 1/n scaling).
  void inverse_head(u64* a_sub, std::size_t sub, std::size_t split) const;
  /// Inverse joining stage with global block count 2^s over butterfly range
  /// [off, off+len) of block `b`.
  void inverse_stage_part(u64* a, int s, std::size_t b, std::size_t off,
                          std::size_t len) const;
  /// Final inverse scaling by 1/n over [a, a+len), fully reduced.
  void inverse_scale(u64* a, std::size_t len) const;

  friend void ntt_forward_batch(const std::vector<struct NttJob>& jobs);
  friend void ntt_inverse_batch(const std::vector<struct NttJob>& jobs);

  std::size_t n_;
  int log_n_;
  Modulus mod_;
  std::vector<u64> roots_, roots_shoup_;          // psi^brev(i)
  std::vector<u64> inv_roots_, inv_roots_shoup_;  // psi^-brev(i)
  u64 n_inv_ = 0, n_inv_shoup_ = 0;
};

/// One row of a batched NTT: the residue data and the prime's tables.
struct NttJob {
  u64* data = nullptr;
  const NttTables* tables = nullptr;
};

/// Batched in-place forward / inverse NTT over independent rows (all rows
/// must share the same n; tables may differ per row — chain primes vs the
/// special prime).
///
/// This is the sub-row parallelism entry point: when the row count alone
/// cannot feed the thread pool (short prime chains), each row is split into
/// independent sub-transforms so parallel_for sees rows x blocks of work.
/// The split only regroups independent butterflies — results are
/// bit-identical to per-row forward()/inverse() for every thread count and
/// SIMD tier.
void ntt_forward_batch(const std::vector<NttJob>& jobs);
void ntt_inverse_batch(const std::vector<NttJob>& jobs);

}  // namespace sp::fhe
