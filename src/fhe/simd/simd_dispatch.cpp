// Runtime CPU dispatch for the SIMD kernel tiers. The best tier is probed
// once (compiled-in table present AND the CPU reports the feature), the
// SMARTPAF_SIMD environment variable pins a tier for testing, and
// `set_tier` lets benches sweep tiers in-process. Selecting a tier never
// changes results — only throughput (the bit-identity contract is locked by
// tests/test_simd.cpp).
#include "fhe/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sp::fhe::simd {
namespace {

bool cpu_supports(Tier t) {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      // vpmullq needs DQ; F alone is not enough for the kernel set.
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq");
  }
  return false;
#else
  return t == Tier::kScalar;
#endif
}

const Kernels* tier_table(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return detail::scalar_kernels();
    case Tier::kAvx2:
      return detail::avx2_kernels();
    case Tier::kAvx512:
      return detail::avx512_kernels();
  }
  return nullptr;
}

/// Best supported tier at or below `want`.
Tier clamp_supported(Tier want) {
  for (int t = static_cast<int>(want); t > 0; --t)
    if (tier_supported(static_cast<Tier>(t))) return static_cast<Tier>(t);
  return Tier::kScalar;
}

Tier probe_default() {
  if (const char* env = std::getenv("SMARTPAF_SIMD")) {
    bool ok = false;
    const Tier want = parse_tier(env, &ok);
    if (!ok) {
      std::fprintf(stderr,
                   "[smartpaf] SMARTPAF_SIMD=%s not in {scalar, avx2, avx512}; "
                   "ignoring\n",
                   env);
    } else if (!tier_supported(want)) {
      const Tier got = clamp_supported(want);
      std::fprintf(stderr,
                   "[smartpaf] SMARTPAF_SIMD=%s unsupported on this CPU/build; "
                   "using %s\n",
                   env, tier_name(got));
      return got;
    } else {
      return want;
    }
  }
  return clamp_supported(Tier::kAvx512);
}

std::atomic<int>& tier_slot() {
  // Initialized on first use so the env probe happens after main() setup in
  // tests that setenv early; -1 = not probed yet.
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

bool tier_supported(Tier t) { return tier_table(t) != nullptr && cpu_supports(t); }

Tier active_tier() {
  std::atomic<int>& slot = tier_slot();
  int cur = slot.load(std::memory_order_acquire);
  if (cur < 0) {
    const Tier probed = probe_default();
    // First caller wins; concurrent probes agree anyway (pure function).
    slot.compare_exchange_strong(cur, static_cast<int>(probed),
                                 std::memory_order_acq_rel);
    cur = slot.load(std::memory_order_acquire);
  }
  return static_cast<Tier>(cur);
}

const Kernels& kernels() { return *tier_table(active_tier()); }

bool set_tier(Tier t) {
  if (!tier_supported(t)) return false;
  active_tier();  // ensure probed so the slot is never left at -1
  tier_slot().store(static_cast<int>(t), std::memory_order_release);
  return true;
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "?";
}

Tier parse_tier(const char* s, bool* ok) {
  if (ok) *ok = true;
  if (s != nullptr) {
    if (std::strcmp(s, "scalar") == 0) return Tier::kScalar;
    if (std::strcmp(s, "avx2") == 0) return Tier::kAvx2;
    if (std::strcmp(s, "avx512") == 0) return Tier::kAvx512;
  }
  if (ok) *ok = false;
  return Tier::kScalar;
}

}  // namespace sp::fhe::simd
