// AVX-512 kernel tier: 8 x u64 lanes. Uses the native vpmullq (AVX-512DQ)
// for low-half 64x64 products, vpmuludq decomposition for the high half,
// native unsigned compares/mask ops, and min_epu64 for conditional
// subtraction. Arithmetic is exactly the scalar formulas — bit-identical
// results are the contract, locked by tests/test_simd.cpp.
//
// Compiled with -mavx512f -mavx512dq (per-file, no global -march); degrades
// to a null table when the compiler cannot target AVX-512.
#include "fhe/simd/simd.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace sp::fhe::simd {
namespace {

constexpr std::size_t kLanes = 8;

inline __m512i load(const u64* p) { return _mm512_loadu_si512(p); }
inline void store(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }

inline __m512i hi32(__m512i v) { return _mm512_srli_epi64(v, 32); }

inline __m512i mul64_lo(__m512i x, __m512i y) { return _mm512_mullo_epi64(x, y); }

/// High 64 bits of the lanewise 64x64 product (vpmuludq decomposition),
/// both operands pre-split.
inline __m512i mul64_hi_pre(__m512i x, __m512i xh, __m512i y, __m512i yh) {
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i ll = _mm512_mul_epu32(x, y);
  const __m512i lh = _mm512_mul_epu32(x, yh);
  const __m512i hl = _mm512_mul_epu32(xh, y);
  const __m512i hh = _mm512_mul_epu32(xh, yh);
  const __m512i cross = _mm512_add_epi64(
      hi32(ll),
      _mm512_add_epi64(_mm512_and_si512(lh, m32), _mm512_and_si512(hl, m32)));
  return _mm512_add_epi64(
      hh, _mm512_add_epi64(hi32(lh), _mm512_add_epi64(hi32(hl), hi32(cross))));
}

inline __m512i mul64_hi(__m512i x, __m512i y) {
  return mul64_hi_pre(x, hi32(x), y, hi32(y));
}

/// r >= c ? r - c : r. The subtract wraps when r < c, so the unsigned min
/// picks the in-range representative.
inline __m512i csub(__m512i r, __m512i c) {
  return _mm512_min_epu64(r, _mm512_sub_epi64(r, c));
}

/// Twiddle operand with the Shoup companion's high half pre-split (the
/// native vpmullq low-half products need no splits).
struct TwV {
  __m512i w, ws, ws_hi;
};
inline TwV make_tw(__m512i wv, __m512i wsv) { return {wv, wsv, hi32(wsv)}; }

inline __m512i shoup_lazy(__m512i x, const TwV& tw, __m512i q) {
  const __m512i q_hat = mul64_hi_pre(x, hi32(x), tw.ws, tw.ws_hi);
  return _mm512_sub_epi64(mul64_lo(x, tw.w), mul64_lo(q_hat, q));
}

inline __m512i shoup_lazy(__m512i x, __m512i w, __m512i ws, __m512i q) {
  return shoup_lazy(x, make_tw(w, ws), q);
}

/// One vector of forward butterflies: x/y in < 4q, out < 4q. The twiddle may
/// be per-lane (small-t layouts) or a broadcast.
inline void fwd_bfly(__m512i& x, __m512i& y, const TwV& tw, __m512i q,
                     __m512i two_q) {
  const __m512i xx = csub(x, two_q);
  const __m512i v = shoup_lazy(y, tw, q);
  x = _mm512_add_epi64(xx, v);
  y = _mm512_sub_epi64(_mm512_add_epi64(xx, two_q), v);
}

/// One vector of inverse butterflies: x/y in < 2q, out < 2q.
inline void inv_bfly(__m512i& x, __m512i& y, const TwV& tw, __m512i q,
                     __m512i two_q) {
  const __m512i xx = x;
  const __m512i yy = y;
  x = csub(_mm512_add_epi64(xx, yy), two_q);
  const __m512i diff = _mm512_sub_epi64(_mm512_add_epi64(xx, two_q), yy);
  y = shoup_lazy(diff, tw, q);
}

void add_mod_avx512(u64* a, const u64* b, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    store(a + j, csub(_mm512_add_epi64(load(a + j), load(b + j)), qv));
  for (; j < n; ++j) {
    const u64 r = a[j] + b[j];
    a[j] = r >= q ? r - q : r;
  }
}

void sub_mod_avx512(u64* a, const u64* b, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m512i av = load(a + j);
    const __m512i bv = load(b + j);
    const __mmask8 borrow = _mm512_cmplt_epu64_mask(av, bv);
    __m512i r = _mm512_sub_epi64(av, bv);
    r = _mm512_mask_add_epi64(r, borrow, r, qv);
    store(a + j, r);
  }
  for (; j < n; ++j) a[j] = a[j] >= b[j] ? a[j] - b[j] : a[j] + q - b[j];
}

void neg_mod_avx512(u64* a, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i zero = _mm512_setzero_si512();
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m512i av = load(a + j);
    const __mmask8 nonzero = _mm512_cmpneq_epi64_mask(av, zero);
    store(a + j, _mm512_maskz_sub_epi64(nonzero, qv, av));
  }
  for (; j < n; ++j) a[j] = a[j] == 0 ? 0 : q - a[j];
}

void mul_mod_avx512(u64* a, const u64* b, std::size_t n, u64 q, u64 ratio_hi,
                    u64 ratio_lo) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i rhi = _mm512_set1_epi64(static_cast<long long>(ratio_hi));
  const __m512i rlo = _mm512_set1_epi64(static_cast<long long>(ratio_lo));
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m512i av = load(a + j);
    const __m512i bv = load(b + j);
    const __m512i x_lo = mul64_lo(av, bv);
    const __m512i x_hi = mul64_hi(av, bv);
    const __m512i t1_lo = mul64_lo(x_lo, rhi);
    const __m512i t1_hi = mul64_hi(x_lo, rhi);
    const __m512i t2_lo = mul64_lo(x_hi, rlo);
    const __m512i t2_hi = mul64_hi(x_hi, rlo);
    const __m512i carry = mul64_hi(x_lo, rlo);
    const __m512i s1 = _mm512_add_epi64(t1_lo, t2_lo);
    const __mmask8 c1 = _mm512_cmplt_epu64_mask(s1, t1_lo);
    const __m512i s2 = _mm512_add_epi64(s1, carry);
    const __mmask8 c2 = _mm512_cmplt_epu64_mask(s2, s1);
    __m512i mid_hi = _mm512_add_epi64(t1_hi, t2_hi);
    mid_hi = _mm512_mask_add_epi64(mid_hi, c1, mid_hi, one);
    mid_hi = _mm512_mask_add_epi64(mid_hi, c2, mid_hi, one);
    const __m512i est = _mm512_add_epi64(mul64_lo(x_hi, rhi), mid_hi);
    __m512i r = _mm512_sub_epi64(x_lo, mul64_lo(est, qv));
    r = csub(csub(r, qv), qv);  // remainder < 3q
    store(a + j, r);
  }
  for (; j < n; ++j) {
    const u128 x = static_cast<u128>(a[j]) * b[j];
    const u64 x_lo = static_cast<u64>(x);
    const u64 x_hi = static_cast<u64>(x >> 64);
    const u128 t1 = static_cast<u128>(x_lo) * ratio_hi;
    const u128 t2 = static_cast<u128>(x_hi) * ratio_lo;
    const u64 carry = static_cast<u64>((static_cast<u128>(x_lo) * ratio_lo) >> 64);
    const u128 mid = t1 + t2 + carry;
    const u64 est = x_hi * ratio_hi + static_cast<u64>(mid >> 64);
    u64 r = x_lo - est * q;
    while (r >= q) r -= q;
    a[j] = r;
  }
}

void mul_shoup_avx512(u64* a, std::size_t n, u64 w, u64 w_shoup, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i wv = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i wsv = _mm512_set1_epi64(static_cast<long long>(w_shoup));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    store(a + j, csub(shoup_lazy(load(a + j), wv, wsv, qv), qv));
  for (; j < n; ++j) a[j] = mul_shoup(a[j], w, w_shoup, q);
}

void fwd_butterfly_avx512(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                          u64 q) {
  const u64 two_q = 2 * q;
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i two_qv = _mm512_set1_epi64(static_cast<long long>(two_q));
  const __m512i wv = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i wsv = _mm512_set1_epi64(static_cast<long long>(w_shoup));
  const TwV tw = make_tw(wv, wsv);
  std::size_t j = 0;
  for (; j + 2 * kLanes <= len; j += 2 * kLanes) {
    __m512i x0 = load(x + j), x1 = load(x + j + kLanes);
    __m512i y0 = load(y + j), y1 = load(y + j + kLanes);
    fwd_bfly(x0, y0, tw, qv, two_qv);
    fwd_bfly(x1, y1, tw, qv, two_qv);
    store(x + j, x0);
    store(x + j + kLanes, x1);
    store(y + j, y0);
    store(y + j + kLanes, y1);
  }
  for (; j + kLanes <= len; j += kLanes) {
    __m512i xx = load(x + j);
    __m512i yy = load(y + j);
    fwd_bfly(xx, yy, tw, qv, two_qv);
    store(x + j, xx);
    store(y + j, yy);
  }
  for (; j < len; ++j) {
    u64 xx = x[j];
    if (xx >= two_q) xx -= two_q;
    const u64 v = mul_shoup_lazy(y[j], w, w_shoup, q);
    x[j] = xx + v;
    y[j] = xx + two_q - v;
  }
}

void inv_butterfly_avx512(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                          u64 q) {
  const u64 two_q = 2 * q;
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i two_qv = _mm512_set1_epi64(static_cast<long long>(two_q));
  const __m512i wv = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i wsv = _mm512_set1_epi64(static_cast<long long>(w_shoup));
  const TwV tw = make_tw(wv, wsv);
  std::size_t j = 0;
  for (; j + 2 * kLanes <= len; j += 2 * kLanes) {
    __m512i x0 = load(x + j), x1 = load(x + j + kLanes);
    __m512i y0 = load(y + j), y1 = load(y + j + kLanes);
    inv_bfly(x0, y0, tw, qv, two_qv);
    inv_bfly(x1, y1, tw, qv, two_qv);
    store(x + j, x0);
    store(x + j + kLanes, x1);
    store(y + j, y0);
    store(y + j + kLanes, y1);
  }
  for (; j + kLanes <= len; j += kLanes) {
    __m512i xx = load(x + j);
    __m512i yy = load(y + j);
    inv_bfly(xx, yy, tw, qv, two_qv);
    store(x + j, xx);
    store(y + j, yy);
  }
  for (; j < len; ++j) {
    const u64 xx = x[j];
    const u64 yy = y[j];
    u64 u = xx + yy;
    if (u >= two_q) u -= two_q;
    x[j] = u;
    y[j] = mul_shoup_lazy(xx + two_q - yy, w, w_shoup, q);
  }
}

/// Stage worker shared by the forward/inverse stage kernels. Wide stages
/// (t >= 8) broadcast one twiddle per block; t = 4 / 2 / 1 regroup 2 / 4 / 8
/// consecutive blocks into full vectors with 128-bit shuffles or cross-lane
/// permutes and use per-lane twiddles, so every stage stays vectorized. The
/// permutes only reorder independent butterflies — arithmetic is unchanged.
template <bool Fwd>
inline void stage_avx512(u64* a, std::size_t t, std::size_t blocks,
                         const u64* w, const u64* w_shoup, u64 q) {
  const u64 two_q = 2 * q;
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i two_qv = _mm512_set1_epi64(static_cast<long long>(two_q));

  if (t >= kLanes) {
    for (std::size_t b = 0; b < blocks; ++b) {
      u64* x = a + b * 2 * t;
      u64* y = x + t;
      const TwV tw =
          make_tw(_mm512_set1_epi64(static_cast<long long>(w[b])),
                  _mm512_set1_epi64(static_cast<long long>(w_shoup[b])));
      std::size_t j = 0;
      for (; j + 2 * kLanes <= t; j += 2 * kLanes) {
        __m512i x0 = load(x + j), x1 = load(x + j + kLanes);
        __m512i y0 = load(y + j), y1 = load(y + j + kLanes);
        if (Fwd) {
          fwd_bfly(x0, y0, tw, qv, two_qv);
          fwd_bfly(x1, y1, tw, qv, two_qv);
        } else {
          inv_bfly(x0, y0, tw, qv, two_qv);
          inv_bfly(x1, y1, tw, qv, two_qv);
        }
        store(x + j, x0);
        store(x + j + kLanes, x1);
        store(y + j, y0);
        store(y + j + kLanes, y1);
      }
      for (; j + kLanes <= t; j += kLanes) {
        __m512i xx = load(x + j);
        __m512i yy = load(y + j);
        if (Fwd)
          fwd_bfly(xx, yy, tw, qv, two_qv);
        else
          inv_bfly(xx, yy, tw, qv, two_qv);
        store(x + j, xx);
        store(y + j, yy);
      }
      for (; j < t; ++j) {
        if (Fwd) {
          u64 xx = x[j];
          if (xx >= two_q) xx -= two_q;
          const u64 v = mul_shoup_lazy(y[j], w[b], w_shoup[b], q);
          x[j] = xx + v;
          y[j] = xx + two_q - v;
        } else {
          const u64 xx = x[j];
          const u64 yy = y[j];
          u64 u = xx + yy;
          if (u >= two_q) u -= two_q;
          x[j] = u;
          y[j] = mul_shoup_lazy(xx + two_q - yy, w[b], w_shoup[b], q);
        }
      }
    }
    return;
  }

  std::size_t b = 0;
  if (t == 4) {
    // Two blocks per vector pair: each block is one full vector
    // (x0..x3 y0..y3); 128-bit quarter shuffles regroup two blocks into an
    // all-x and an all-y vector, twiddles expand as (w0 x4, w1 x4).
    const __m512i widx = _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1);
    for (; b + 2 <= blocks; b += 2) {
      u64* p = a + b * 8;
      const __m512i va = load(p);
      const __m512i vb = load(p + 8);
      __m512i xx = _mm512_shuffle_i64x2(va, vb, 0x44);
      __m512i yy = _mm512_shuffle_i64x2(va, vb, 0xee);
      const __m512i wv = _mm512_permutexvar_epi64(
          widx, _mm512_castsi128_si512(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(w + b))));
      const __m512i wsv = _mm512_permutexvar_epi64(
          widx, _mm512_castsi128_si512(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(w_shoup + b))));
      const TwV tw = make_tw(wv, wsv);
      if (Fwd)
        fwd_bfly(xx, yy, tw, qv, two_qv);
      else
        inv_bfly(xx, yy, tw, qv, two_qv);
      store(p, _mm512_shuffle_i64x2(xx, yy, 0x44));
      store(p + 8, _mm512_shuffle_i64x2(xx, yy, 0xee));
    }
  } else if (t == 2) {
    // Four blocks per vector pair: blocks are (x0 x1 y0 y1) quadruples;
    // cross-lane permutes gather the x and y pairs, twiddles expand as
    // (w0 w0 w1 w1 w2 w2 w3 w3).
    const __m512i xidx = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i yidx = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i aidx = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i bidx = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    const __m512i widx = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
    for (; b + 4 <= blocks; b += 4) {
      u64* p = a + b * 4;
      const __m512i va = load(p);
      const __m512i vb = load(p + 8);
      __m512i xx = _mm512_permutex2var_epi64(va, xidx, vb);
      __m512i yy = _mm512_permutex2var_epi64(va, yidx, vb);
      const __m512i wv = _mm512_permutexvar_epi64(
          widx, _mm512_castsi256_si512(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(w + b))));
      const __m512i wsv = _mm512_permutexvar_epi64(
          widx, _mm512_castsi256_si512(_mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(w_shoup + b))));
      const TwV tw = make_tw(wv, wsv);
      if (Fwd)
        fwd_bfly(xx, yy, tw, qv, two_qv);
      else
        inv_bfly(xx, yy, tw, qv, two_qv);
      store(p, _mm512_permutex2var_epi64(xx, aidx, yy));
      store(p + 8, _mm512_permutex2var_epi64(xx, bidx, yy));
    }
  } else if (t == 1) {
    // Eight blocks per vector pair: blocks are (x y) pairs, so the x lanes
    // sit at even offsets; twiddles are already one-per-block and load
    // contiguously in natural order.
    const __m512i xidx = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i yidx = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i aidx = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i bidx = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    for (; b + 8 <= blocks; b += 8) {
      u64* p = a + b * 2;
      const __m512i va = load(p);
      const __m512i vb = load(p + 8);
      __m512i xx = _mm512_permutex2var_epi64(va, xidx, vb);
      __m512i yy = _mm512_permutex2var_epi64(va, yidx, vb);
      const __m512i wv = load(w + b);
      const __m512i wsv = load(w_shoup + b);
      const TwV tw = make_tw(wv, wsv);
      if (Fwd)
        fwd_bfly(xx, yy, tw, qv, two_qv);
      else
        inv_bfly(xx, yy, tw, qv, two_qv);
      store(p, _mm512_permutex2var_epi64(xx, aidx, yy));
      store(p + 8, _mm512_permutex2var_epi64(xx, bidx, yy));
    }
  }
  // Leftover blocks (tiny rings only): scalar formulas.
  for (; b < blocks; ++b) {
    u64* x = a + b * 2 * t;
    u64* y = x + t;
    const u64 wb = w[b];
    const u64 wsb = w_shoup[b];
    for (std::size_t j = 0; j < t; ++j) {
      if (Fwd) {
        u64 xx = x[j];
        if (xx >= two_q) xx -= two_q;
        const u64 v = mul_shoup_lazy(y[j], wb, wsb, q);
        x[j] = xx + v;
        y[j] = xx + two_q - v;
      } else {
        const u64 xx = x[j];
        const u64 yy = y[j];
        u64 u = xx + yy;
        if (u >= two_q) u -= two_q;
        x[j] = u;
        y[j] = mul_shoup_lazy(xx + two_q - yy, wb, wsb, q);
      }
    }
  }
}

void fwd_stage_avx512(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                      const u64* w_shoup, u64 q) {
  stage_avx512<true>(a, t, blocks, w, w_shoup, q);
}

void inv_stage_avx512(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                      const u64* w_shoup, u64 q) {
  stage_avx512<false>(a, t, blocks, w, w_shoup, q);
}

void reduce_4q_avx512(u64* a, std::size_t n, u64 q) {
  const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
  const __m512i two_qv = _mm512_set1_epi64(static_cast<long long>(2 * q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    store(a + j, csub(csub(load(a + j), two_qv), qv));
  const u64 two_q = 2 * q;
  for (; j < n; ++j) {
    u64 x = a[j];
    if (x >= two_q) x -= two_q;
    if (x >= q) x -= q;
    a[j] = x;
  }
}

const Kernels kAvx512Kernels = {
    add_mod_avx512,  sub_mod_avx512,      neg_mod_avx512,      mul_mod_avx512,
    mul_shoup_avx512, fwd_butterfly_avx512, inv_butterfly_avx512, fwd_stage_avx512,
    inv_stage_avx512, reduce_4q_avx512,
};

}  // namespace

namespace detail {
const Kernels* avx512_kernels() { return &kAvx512Kernels; }
}  // namespace detail

}  // namespace sp::fhe::simd

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace sp::fhe::simd::detail {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace sp::fhe::simd::detail

#endif
