// AVX2 kernel tier: 4 x u64 lanes. AVX2 has no 64x64 multiply, so the high
// and low halves of every 64-bit product are assembled from _mm256_mul_epu32
// (32x32 -> 64) partial products; unsigned 64-bit compares are emulated by
// biasing into signed range. Every kernel computes exactly the scalar
// formulas (same lazy bounds, same Barrett correction count), so results are
// bit-identical to the scalar tier; the scalar epilogue handles tails.
//
// The hot paths precompute the high 32-bit halves of loop-invariant operands
// (twiddle, Shoup companion, modulus) once per block/stage and share the
// variable operand's split across the Shoup multiply's three products, which
// removes a third of the shift traffic from the butterfly.
//
// The NTT stage kernels keep every stage vectorized: wide stages (t >= 4)
// broadcast one twiddle per block, the t = 2 stage pairs two blocks per
// vector via 128-bit permutes, and the t = 1 stage processes four blocks per
// vector via quadword unpacks with per-lane twiddles. The shuffles only
// regroup independent butterflies, so the arithmetic — and the results —
// are unchanged.
//
// This file is compiled with -mavx2 (per-file, no global -march); when the
// compiler cannot target AVX2 the TU degrades to a null table and dispatch
// never selects the tier.
#include "fhe/simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace sp::fhe::simd {
namespace {

constexpr std::size_t kLanes = 4;

inline __m256i load(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

inline __m256i hi32(__m256i v) { return _mm256_srli_epi64(v, 32); }

/// Low 64 bits of the lanewise 64x64 product, both operands pre-split.
inline __m256i mul64_lo_pre(__m256i x, __m256i x_hi, __m256i y, __m256i y_hi) {
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(x, y_hi), _mm256_mul_epu32(x_hi, y));
  return _mm256_add_epi64(_mm256_mul_epu32(x, y),
                          _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lanewise 64x64 product, both operands pre-split.
inline __m256i mul64_hi_pre(__m256i x, __m256i x_hi, __m256i y, __m256i y_hi) {
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i ll = _mm256_mul_epu32(x, y);
  const __m256i lh = _mm256_mul_epu32(x, y_hi);
  const __m256i hl = _mm256_mul_epu32(x_hi, y);
  const __m256i hh = _mm256_mul_epu32(x_hi, y_hi);
  // cross < 2^34: (ll >> 32) + low32(lh) + low32(hl) cannot overflow.
  const __m256i cross = _mm256_add_epi64(
      hi32(ll),
      _mm256_add_epi64(_mm256_and_si256(lh, m32), _mm256_and_si256(hl, m32)));
  return _mm256_add_epi64(
      hh, _mm256_add_epi64(hi32(lh), _mm256_add_epi64(hi32(hl), hi32(cross))));
}

const __m256i kSign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));

/// All-ones lanes where a < b (unsigned).
inline __m256i lt_u64(__m256i a, __m256i b) {
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, kSign), _mm256_xor_si256(a, kSign));
}

/// r >= c ? r - c : r (conditional subtract).
inline __m256i csub(__m256i r, __m256i c) {
  const __m256i keep = lt_u64(r, c);  // r < c: keep r
  return _mm256_blendv_epi8(_mm256_sub_epi64(r, c), r, keep);
}

/// Pre-split twiddle operand (w, w_shoup and their high halves).
struct TwV {
  __m256i w, w_hi, ws, ws_hi;
};
inline TwV make_tw(__m256i wv, __m256i wsv) {
  return {wv, hi32(wv), wsv, hi32(wsv)};
}

/// Pre-split modulus context for one stage/kernel invocation.
struct ModV {
  __m256i q, q_hi, two_q;
};
inline ModV make_mod(u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  return {qv, hi32(qv),
          _mm256_set1_epi64x(static_cast<long long>(2 * q))};
}

/// x * w mod- q in [0, 2q) via the Shoup companion (lazy; any 64-bit x).
/// Exactly mul_shoup_lazy per lane; the shared x split only reschedules it.
inline __m256i shoup_lazy(__m256i x, const TwV& tw, const ModV& m) {
  const __m256i x_hi = hi32(x);
  const __m256i q_hat = mul64_hi_pre(x, x_hi, tw.ws, tw.ws_hi);
  return _mm256_sub_epi64(
      mul64_lo_pre(x, x_hi, tw.w, tw.w_hi),
      mul64_lo_pre(q_hat, hi32(q_hat), m.q, m.q_hi));
}

/// One vector of forward butterflies: x/y in < 4q, out < 4q.
inline void fwd_bfly(__m256i& x, __m256i& y, const TwV& tw, const ModV& m) {
  const __m256i xx = csub(x, m.two_q);
  const __m256i v = shoup_lazy(y, tw, m);
  x = _mm256_add_epi64(xx, v);
  y = _mm256_sub_epi64(_mm256_add_epi64(xx, m.two_q), v);
}

/// One vector of inverse butterflies: x/y in < 2q, out < 2q.
inline void inv_bfly(__m256i& x, __m256i& y, const TwV& tw, const ModV& m) {
  const __m256i xx = x;
  const __m256i yy = y;
  x = csub(_mm256_add_epi64(xx, yy), m.two_q);
  const __m256i diff = _mm256_sub_epi64(_mm256_add_epi64(xx, m.two_q), yy);
  y = shoup_lazy(diff, tw, m);
}

void add_mod_avx2(u64* a, const u64* b, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    store(a + j, csub(_mm256_add_epi64(load(a + j), load(b + j)), qv));
  for (; j < n; ++j) {
    const u64 r = a[j] + b[j];
    a[j] = r >= q ? r - q : r;
  }
}

void sub_mod_avx2(u64* a, const u64* b, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m256i av = load(a + j);
    const __m256i bv = load(b + j);
    const __m256i borrow = lt_u64(av, bv);  // a < b: add q back
    store(a + j, _mm256_add_epi64(_mm256_sub_epi64(av, bv),
                                  _mm256_and_si256(qv, borrow)));
  }
  for (; j < n; ++j) a[j] = a[j] >= b[j] ? a[j] - b[j] : a[j] + q - b[j];
}

void neg_mod_avx2(u64* a, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m256i av = load(a + j);
    const __m256i is_zero = _mm256_cmpeq_epi64(av, zero);
    store(a + j, _mm256_andnot_si256(is_zero, _mm256_sub_epi64(qv, av)));
  }
  for (; j < n; ++j) a[j] = a[j] == 0 ? 0 : q - a[j];
}

/// Barrett mul_mod and Shoup mul_shoup delegate to the scalar routines: the
/// scalar versions do one mulx per 64x64 product, while the AVX2 emulation
/// needs 3-4 vpmuludq plus shift/add glue per product, and on elementwise
/// kernels (one modmul of useful work per element) that consistently
/// measures *slower* than scalar — unlike the butterflies, where the
/// surrounding lazy adds/subs amortize the emulation. Delegation keeps the
/// tier table the best-known implementation per kernel; results are
/// trivially bit-identical.
void mul_mod_avx2(u64* a, const u64* b, std::size_t n, u64 q, u64 ratio_hi,
                  u64 ratio_lo) {
  detail::scalar_kernels()->mul_mod(a, b, n, q, ratio_hi, ratio_lo);
}

void mul_shoup_avx2(u64* a, std::size_t n, u64 w, u64 w_shoup, u64 q) {
  detail::scalar_kernels()->mul_shoup(a, n, w, w_shoup, q);
}

void fwd_butterfly_avx2(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                        u64 q) {
  const u64 two_q = 2 * q;
  const ModV m = make_mod(q);
  const TwV tw = make_tw(_mm256_set1_epi64x(static_cast<long long>(w)),
                         _mm256_set1_epi64x(static_cast<long long>(w_shoup)));
  std::size_t j = 0;
  for (; j + 2 * kLanes <= len; j += 2 * kLanes) {
    __m256i x0 = load(x + j), x1 = load(x + j + kLanes);
    __m256i y0 = load(y + j), y1 = load(y + j + kLanes);
    fwd_bfly(x0, y0, tw, m);
    fwd_bfly(x1, y1, tw, m);
    store(x + j, x0);
    store(x + j + kLanes, x1);
    store(y + j, y0);
    store(y + j + kLanes, y1);
  }
  for (; j + kLanes <= len; j += kLanes) {
    __m256i xx = load(x + j);
    __m256i yy = load(y + j);
    fwd_bfly(xx, yy, tw, m);
    store(x + j, xx);
    store(y + j, yy);
  }
  for (; j < len; ++j) {
    u64 xx = x[j];
    if (xx >= two_q) xx -= two_q;
    const u64 v = mul_shoup_lazy(y[j], w, w_shoup, q);
    x[j] = xx + v;
    y[j] = xx + two_q - v;
  }
}

void inv_butterfly_avx2(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                        u64 q) {
  const u64 two_q = 2 * q;
  const ModV m = make_mod(q);
  const TwV tw = make_tw(_mm256_set1_epi64x(static_cast<long long>(w)),
                         _mm256_set1_epi64x(static_cast<long long>(w_shoup)));
  std::size_t j = 0;
  for (; j + 2 * kLanes <= len; j += 2 * kLanes) {
    __m256i x0 = load(x + j), x1 = load(x + j + kLanes);
    __m256i y0 = load(y + j), y1 = load(y + j + kLanes);
    inv_bfly(x0, y0, tw, m);
    inv_bfly(x1, y1, tw, m);
    store(x + j, x0);
    store(x + j + kLanes, x1);
    store(y + j, y0);
    store(y + j + kLanes, y1);
  }
  for (; j + kLanes <= len; j += kLanes) {
    __m256i xx = load(x + j);
    __m256i yy = load(y + j);
    inv_bfly(xx, yy, tw, m);
    store(x + j, xx);
    store(y + j, yy);
  }
  for (; j < len; ++j) {
    const u64 xx = x[j];
    const u64 yy = y[j];
    u64 u = xx + yy;
    if (u >= two_q) u -= two_q;
    x[j] = u;
    y[j] = mul_shoup_lazy(xx + two_q - yy, w, w_shoup, q);
  }
}

/// Stage worker shared by the forward/inverse stage kernels; Fwd selects the
/// butterfly. Keeps the whole block loop in one frame so per-block work is
/// just the twiddle broadcast/split, and vectorizes the t = 2 / t = 1
/// layouts via permutes so no power-of-two stage drops to scalar.
template <bool Fwd>
inline void stage_avx2(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                       const u64* w_shoup, u64 q) {
  const u64 two_q = 2 * q;
  const ModV m = make_mod(q);

  if (t >= kLanes) {
    for (std::size_t b = 0; b < blocks; ++b) {
      u64* x = a + b * 2 * t;
      u64* y = x + t;
      const TwV tw =
          make_tw(_mm256_set1_epi64x(static_cast<long long>(w[b])),
                  _mm256_set1_epi64x(static_cast<long long>(w_shoup[b])));
      std::size_t j = 0;
      for (; j + 2 * kLanes <= t; j += 2 * kLanes) {
        __m256i x0 = load(x + j), x1 = load(x + j + kLanes);
        __m256i y0 = load(y + j), y1 = load(y + j + kLanes);
        if (Fwd) {
          fwd_bfly(x0, y0, tw, m);
          fwd_bfly(x1, y1, tw, m);
        } else {
          inv_bfly(x0, y0, tw, m);
          inv_bfly(x1, y1, tw, m);
        }
        store(x + j, x0);
        store(x + j + kLanes, x1);
        store(y + j, y0);
        store(y + j + kLanes, y1);
      }
      for (; j + kLanes <= t; j += kLanes) {
        __m256i xx = load(x + j);
        __m256i yy = load(y + j);
        if (Fwd)
          fwd_bfly(xx, yy, tw, m);
        else
          inv_bfly(xx, yy, tw, m);
        store(x + j, xx);
        store(y + j, yy);
      }
      for (; j < t; ++j) {
        if (Fwd) {
          u64 xx = x[j];
          if (xx >= two_q) xx -= two_q;
          const u64 v = mul_shoup_lazy(y[j], w[b], w_shoup[b], q);
          x[j] = xx + v;
          y[j] = xx + two_q - v;
        } else {
          const u64 xx = x[j];
          const u64 yy = y[j];
          u64 u = xx + yy;
          if (u >= two_q) u -= two_q;
          x[j] = u;
          y[j] = mul_shoup_lazy(xx + two_q - yy, w[b], w_shoup[b], q);
        }
      }
    }
    return;
  }

  std::size_t b = 0;
  if (t == 2) {
    // Two blocks per vector pair: block = (x0 x1 y0 y1), so the 128-bit
    // halves of two consecutive blocks regroup into an all-x and an all-y
    // vector; twiddles expand as (w0 w0 w1 w1).
    for (; b + 2 <= blocks; b += 2) {
      u64* p = a + b * 4;
      const __m256i va = load(p);
      const __m256i vb = load(p + 4);
      __m256i xx = _mm256_permute2x128_si256(va, vb, 0x20);
      __m256i yy = _mm256_permute2x128_si256(va, vb, 0x31);
      const TwV tw = make_tw(
          _mm256_permute4x64_epi64(
              _mm256_castsi128_si256(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + b))),
              0x50),
          _mm256_permute4x64_epi64(
              _mm256_castsi128_si256(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(w_shoup + b))),
              0x50));
      if (Fwd)
        fwd_bfly(xx, yy, tw, m);
      else
        inv_bfly(xx, yy, tw, m);
      store(p, _mm256_permute2x128_si256(xx, yy, 0x20));
      store(p + 4, _mm256_permute2x128_si256(xx, yy, 0x31));
    }
  } else if (t == 1) {
    // Four blocks per vector pair: blocks are (x y) pairs, so quadword
    // unpacks split/merge x and y lanes; per-lane twiddles follow the
    // unpack order (b, b+2, b+1, b+3).
    for (; b + 4 <= blocks; b += 4) {
      u64* p = a + b * 2;
      const __m256i va = load(p);
      const __m256i vb = load(p + 4);
      __m256i xx = _mm256_unpacklo_epi64(va, vb);
      __m256i yy = _mm256_unpackhi_epi64(va, vb);
      const TwV tw =
          make_tw(_mm256_permute4x64_epi64(load(w + b), 0xd8),
                  _mm256_permute4x64_epi64(load(w_shoup + b), 0xd8));
      if (Fwd)
        fwd_bfly(xx, yy, tw, m);
      else
        inv_bfly(xx, yy, tw, m);
      store(p, _mm256_unpacklo_epi64(xx, yy));
      store(p + 4, _mm256_unpackhi_epi64(xx, yy));
    }
  }
  // Leftover blocks (non-power-of-two t or tiny rings): scalar formulas.
  for (; b < blocks; ++b) {
    u64* x = a + b * 2 * t;
    u64* y = x + t;
    const u64 wb = w[b];
    const u64 wsb = w_shoup[b];
    for (std::size_t j = 0; j < t; ++j) {
      if (Fwd) {
        u64 xx = x[j];
        if (xx >= two_q) xx -= two_q;
        const u64 v = mul_shoup_lazy(y[j], wb, wsb, q);
        x[j] = xx + v;
        y[j] = xx + two_q - v;
      } else {
        const u64 xx = x[j];
        const u64 yy = y[j];
        u64 u = xx + yy;
        if (u >= two_q) u -= two_q;
        x[j] = u;
        y[j] = mul_shoup_lazy(xx + two_q - yy, wb, wsb, q);
      }
    }
  }
}

void fwd_stage_avx2(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                    const u64* w_shoup, u64 q) {
  stage_avx2<true>(a, t, blocks, w, w_shoup, q);
}

void inv_stage_avx2(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                    const u64* w_shoup, u64 q) {
  stage_avx2<false>(a, t, blocks, w, w_shoup, q);
}

void reduce_4q_avx2(u64* a, std::size_t n, u64 q) {
  const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i two_qv = _mm256_set1_epi64x(static_cast<long long>(2 * q));
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes)
    store(a + j, csub(csub(load(a + j), two_qv), qv));
  const u64 two_q = 2 * q;
  for (; j < n; ++j) {
    u64 x = a[j];
    if (x >= two_q) x -= two_q;
    if (x >= q) x -= q;
    a[j] = x;
  }
}

const Kernels kAvx2Kernels = {
    add_mod_avx2,  sub_mod_avx2,      neg_mod_avx2,      mul_mod_avx2,
    mul_shoup_avx2, fwd_butterfly_avx2, inv_butterfly_avx2, fwd_stage_avx2,
    inv_stage_avx2, reduce_4q_avx2,
};

}  // namespace

namespace detail {
const Kernels* avx2_kernels() { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace sp::fhe::simd

#else  // !__AVX2__

namespace sp::fhe::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace sp::fhe::simd::detail

#endif
