#pragma once

#include <cstddef>

#include "fhe/modarith.h"

namespace sp::fhe::simd {

/// Vectorized kernel tiers for the RNS hot loops. The active tier is probed
/// once at startup (CPUID + the flags the build actually compiled), can be
/// pinned down with `SMARTPAF_SIMD=scalar|avx2|avx512`, and switched at
/// runtime by tests/benches with `set_tier`.
///
/// Hard contract: every tier computes bit-identical results to the scalar
/// tier for every kernel. The kernels implement exactly the scalar lazy
/// Harvey/Shoup/Barrett formulas — vector lanes change the schedule, never
/// the arithmetic — so FHE outputs do not depend on the dispatch decision.
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Kernel table for one tier. All pointers are non-null in every published
/// table. Ranges are contiguous; `n`/`len` may be any value (kernels handle
/// non-multiple-of-lane tails with the scalar formula).
struct Kernels {
  // --- Elementwise over n residues (inputs fully reduced unless noted) ---
  /// a[i] = a[i] + b[i] mod q.
  void (*add_mod)(u64* a, const u64* b, std::size_t n, u64 q);
  /// a[i] = a[i] - b[i] mod q.
  void (*sub_mod)(u64* a, const u64* b, std::size_t n, u64 q);
  /// a[i] = -a[i] mod q.
  void (*neg_mod)(u64* a, std::size_t n, u64 q);
  /// a[i] = a[i] * b[i] mod q, Barrett reduction of the 128-bit product with
  /// the modulus' precomputed floor(2^128/q) = (ratio_hi, ratio_lo).
  void (*mul_mod)(u64* a, const u64* b, std::size_t n, u64 q, u64 ratio_hi,
                  u64 ratio_lo);
  /// a[i] = a[i] * w mod q (fully reduced), Shoup constant-operand multiply.
  /// a[i] may be any 64-bit value (lazy input allowed).
  void (*mul_shoup)(u64* a, std::size_t n, u64 w, u64 w_shoup, u64 q);

  // --- NTT butterflies (lazy Harvey / Gentleman-Sande) ---
  /// Forward (Cooley-Tukey) butterflies over one twiddle: for i in [0, len):
  ///   x' = reduce_2q(x) + w*y mod- q (lazy),  y' = reduce_2q(x) + 2q - w*y.
  /// Inputs < 4q, outputs < 4q.
  void (*fwd_butterfly)(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                        u64 q);
  /// Inverse (Gentleman-Sande) butterflies: x' = reduce_2q(x+y),
  /// y' = w*(x + 2q - y) lazy. Inputs < 2q, outputs < 2q.
  void (*inv_butterfly)(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                        u64 q);
  /// One forward NTT stage over `blocks` consecutive blocks of 2t elements
  /// starting at `a`; block b uses twiddle (w[b], w_shoup[b]).
  void (*fwd_stage)(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                    const u64* w_shoup, u64 q);
  /// One inverse NTT stage, same layout.
  void (*inv_stage)(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                    const u64* w_shoup, u64 q);

  // --- Final reductions ---
  /// Folds lazy values < 4q into [0, q) (forward-NTT epilogue).
  void (*reduce_4q)(u64* a, std::size_t n, u64 q);
};

/// Currently active tier (after the one-time probe / env override).
Tier active_tier();

/// Kernel table of the active tier.
const Kernels& kernels();

/// True when the tier is both compiled into this binary and supported by the
/// running CPU (kScalar is always supported).
bool tier_supported(Tier t);

/// Switches the active tier; returns false (and leaves the tier unchanged)
/// when unsupported. Not safe to call concurrently with in-flight FHE ops —
/// intended for tests and per-tier bench sweeps.
bool set_tier(Tier t);

/// "scalar" / "avx2" / "avx512".
const char* tier_name(Tier t);

/// Parses a SMARTPAF_SIMD value; `*ok` reports whether the string was one of
/// the three tier names. Exposed so tests can pin the env grammar.
Tier parse_tier(const char* s, bool* ok);

namespace detail {
// Per-TU kernel tables; null when the translation unit was built without the
// matching instruction set (e.g. a compiler lacking -mavx512f).
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();
}  // namespace detail

}  // namespace sp::fhe::simd
