// Scalar kernel tier: the reference implementations every vector tier must
// match bit for bit. These are the exact loop bodies the pre-SIMD backend
// ran (Harvey lazy butterflies, Shoup constant multiplies, the Modulus
// Barrett reduction), factored into the kernel table shape.
#include "fhe/simd/simd.h"

namespace sp::fhe::simd {
namespace {

void add_mod_scalar(u64* a, const u64* b, std::size_t n, u64 q) {
  for (std::size_t j = 0; j < n; ++j) {
    const u64 r = a[j] + b[j];
    a[j] = r >= q ? r - q : r;
  }
}

void sub_mod_scalar(u64* a, const u64* b, std::size_t n, u64 q) {
  for (std::size_t j = 0; j < n; ++j) a[j] = a[j] >= b[j] ? a[j] - b[j] : a[j] + q - b[j];
}

void neg_mod_scalar(u64* a, std::size_t n, u64 q) {
  for (std::size_t j = 0; j < n; ++j) a[j] = a[j] == 0 ? 0 : q - a[j];
}

/// Barrett reduction of a 128-bit product, identical to Modulus::reduce128.
inline u64 barrett128(u64 x_lo, u64 x_hi, u64 q, u64 ratio_hi, u64 ratio_lo) {
  const u128 t1 = static_cast<u128>(x_lo) * ratio_hi;
  const u128 t2 = static_cast<u128>(x_hi) * ratio_lo;
  const u64 carry = static_cast<u64>((static_cast<u128>(x_lo) * ratio_lo) >> 64);
  const u128 mid = t1 + t2 + carry;
  const u64 est = x_hi * ratio_hi + static_cast<u64>(mid >> 64);
  u64 r = x_lo - est * q;  // wraparound ok; remainder < 3q
  while (r >= q) r -= q;
  return r;
}

void mul_mod_scalar(u64* a, const u64* b, std::size_t n, u64 q, u64 ratio_hi,
                    u64 ratio_lo) {
  for (std::size_t j = 0; j < n; ++j) {
    const u128 x = static_cast<u128>(a[j]) * b[j];
    a[j] = barrett128(static_cast<u64>(x), static_cast<u64>(x >> 64), q, ratio_hi,
                      ratio_lo);
  }
}

void mul_shoup_scalar(u64* a, std::size_t n, u64 w, u64 w_shoup, u64 q) {
  for (std::size_t j = 0; j < n; ++j) a[j] = mul_shoup(a[j], w, w_shoup, q);
}

void fwd_butterfly_scalar(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                          u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t j = 0; j < len; ++j) {
    u64 xx = x[j];
    if (xx >= two_q) xx -= two_q;
    const u64 v = mul_shoup_lazy(y[j], w, w_shoup, q);  // < 2q
    x[j] = xx + v;
    y[j] = xx + two_q - v;
  }
}

void inv_butterfly_scalar(u64* x, u64* y, std::size_t len, u64 w, u64 w_shoup,
                          u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t j = 0; j < len; ++j) {
    const u64 xx = x[j];
    const u64 yy = y[j];
    u64 u = xx + yy;
    if (u >= two_q) u -= two_q;
    x[j] = u;
    y[j] = mul_shoup_lazy(xx + two_q - yy, w, w_shoup, q);  // < 2q
  }
}

void fwd_stage_scalar(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                      const u64* w_shoup, u64 q) {
  for (std::size_t b = 0; b < blocks; ++b)
    fwd_butterfly_scalar(a + b * 2 * t, a + b * 2 * t + t, t, w[b], w_shoup[b], q);
}

void inv_stage_scalar(u64* a, std::size_t t, std::size_t blocks, const u64* w,
                      const u64* w_shoup, u64 q) {
  for (std::size_t b = 0; b < blocks; ++b)
    inv_butterfly_scalar(a + b * 2 * t, a + b * 2 * t + t, t, w[b], w_shoup[b], q);
}

void reduce_4q_scalar(u64* a, std::size_t n, u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t j = 0; j < n; ++j) {
    u64 x = a[j];
    if (x >= two_q) x -= two_q;
    if (x >= q) x -= q;
    a[j] = x;
  }
}

const Kernels kScalarKernels = {
    add_mod_scalar,  sub_mod_scalar,      neg_mod_scalar,      mul_mod_scalar,
    mul_shoup_scalar, fwd_butterfly_scalar, inv_butterfly_scalar, fwd_stage_scalar,
    inv_stage_scalar, reduce_4q_scalar,
};

}  // namespace

namespace detail {
const Kernels* scalar_kernels() { return &kScalarKernels; }
}  // namespace detail

}  // namespace sp::fhe::simd
