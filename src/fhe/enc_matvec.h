#pragma once

#include <vector>

#include "fhe/diag_matvec.h"
#include "fhe/encryptor.h"
#include "fhe/keys.h"

namespace sp::fhe {

/// (factor * ct) landed at exactly (target_level, target_scale): one
/// plaintext multiplication + rescale, consuming one of `ct`'s own levels.
///
/// The scalar is encoded at scale target_scale * q / ct.scale (q = the prime
/// the rescale divides out), so the result's scale is target_scale *exactly*
/// — this is how cross-path operands whose scales have drifted apart through
/// different rescale chains are brought back onto a common (level, scale)
/// pair before an add/sub. Same construction as eval_poly's internal
/// coefficient delivery; exposed here because the encrypted trainer aligns
/// operands across paths (labels vs sigmoid output, momentum vs gradient,
/// weights vs update) every iteration.
Ciphertext scaled_to(Evaluator& ev, const CkksContext& ctx, const Encoder& enc,
                     const Ciphertext& ct, double factor, int target_level,
                     double target_scale);

/// Halevi–Shoup diagonal matvec with an ENCRYPTED matrix: y = X v where the
/// extended diagonals of X are ciphertexts (the training batch — the server
/// must never see the data) and v is a ciphertext (the weights).
///
/// The schedule is the same BSGS split DiagonalMatVec runs, with plaintext
/// multiplications upgraded to ciphertext x ciphertext: the client packs
/// diagonal s pre-rotated by -giant_of(s, n1) at encryption time (free, it
/// has the plaintext), the server computes
///   y = sum_g rot( sum_b  ct_diag[g+b] * rot(v, b),  g )
/// keeping each giant group's inner sum 3-part (lazy relinearization) and
/// paying ONE relinearization per giant group, right before the giant
/// rotation — 3-part ciphertexts cannot rotate. One rescale at the join;
/// the product consumes exactly one level.
class EncDiagMatVec {
 public:
  /// @brief Packs and encrypts the extended diagonals of `weights` under
  /// `plan` (row-major plan.rows x plan.cols; every plan.diag_steps entry
  /// becomes one ciphertext, pre-rotated exactly like the plaintext path).
  /// @param tile  slot-layout repeat stride; 0 = one layout over all slots
  static EncDiagMatVec encrypt(const CkksContext& ctx, const Encoder& enc,
                               Encryptor& encryptor, const DiagMatVecPlan& plan,
                               const std::vector<double>& weights,
                               std::size_t tile, double scale);

  const DiagMatVecPlan& plan() const { return plan_; }
  const std::vector<Ciphertext>& diagonals() const { return diags_; }
  std::vector<Ciphertext>& diagonals() { return diags_; }

  /// @brief y = X v, one level below min(level(v), level(diagonals)).
  /// @param v      2-part weight ciphertext (data in slots [0, plan.cols))
  /// @param gk     rotation keys covering plan().steps()
  /// @param relin  relinearization key (one use per giant group)
  Ciphertext apply(Evaluator& ev, const Ciphertext& v, const GaloisKeys& gk,
                   const KSwitchKey& relin, bool hoist_babies = true) const;

 private:
  DiagMatVecPlan plan_;
  std::vector<Ciphertext> diags_;  ///< parallel to plan_.diag_steps
};

}  // namespace sp::fhe
