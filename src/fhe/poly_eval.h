#pragma once

#include "approx/composite.h"
#include "fhe/evaluator.h"

namespace sp::fhe {

/// Per-evaluation statistics: the paper's latency model is
/// "ct-ct multiplications (with relinearization + rescale) dominate", so the
/// counters here drive both wall-clock measurement and depth verification.
struct EvalStats {
  int ct_mults = 0;
  int relins = 0;
  int rescales = 0;
  int plain_mults = 0;
  int levels_consumed = 0;
  double wall_ms = 0.0;
};

/// Evaluates polynomials / composite PAFs on ciphertexts.
///
/// Powers are produced with a balanced double-and-add ladder so a degree-n
/// stage consumes exactly ceil(log2(n+1)) levels (Appendix C of the paper);
/// term combination encodes each coefficient at the scale that lands every
/// term on one common (level, scale) pair, so additions are exact.
class PafEvaluator {
 public:
  PafEvaluator(const CkksContext& ctx, const Encoder& encoder, const KSwitchKey& relin_key)
      : ctx_(&ctx), encoder_(&encoder), relin_(&relin_key) {}

  /// p(x) for a general dense polynomial (degree >= 1).
  Ciphertext eval_poly(Evaluator& ev, const Ciphertext& x, const approx::Polynomial& p,
                       EvalStats* stats = nullptr) const;

  /// Composite PAF evaluation, stage by stage.
  Ciphertext eval_composite(Evaluator& ev, const Ciphertext& x,
                            const approx::CompositePaf& paf,
                            EvalStats* stats = nullptr) const;

  /// relu(x) ≈ 0.5 x (1 + paf(x / input_scale)) — the Static-Scaling
  /// deployment form (paper §4.5): `input_scale` is the frozen running max.
  Ciphertext relu(Evaluator& ev, const Ciphertext& x, const approx::CompositePaf& paf,
                  double input_scale, EvalStats* stats = nullptr) const;

  /// max(a,b) ≈ 0.5 (a + b) + 0.5 (a-b) paf((a-b)/input_scale).
  Ciphertext max(Evaluator& ev, const Ciphertext& a, const Ciphertext& b,
                 const approx::CompositePaf& paf, double input_scale,
                 EvalStats* stats = nullptr) const;

 private:
  /// (factor * ct) moved to `target_level` with scale exactly `target_scale`
  /// (one plaintext multiplication + rescale).
  Ciphertext scaled_to(Evaluator& ev, const Ciphertext& ct, double factor,
                       int target_level, double target_scale) const;

  const CkksContext* ctx_;
  const Encoder* encoder_;
  const KSwitchKey* relin_;
};

}  // namespace sp::fhe
