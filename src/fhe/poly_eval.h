#pragma once

#include <map>

#include "approx/composite.h"
#include "fhe/evaluator.h"

namespace sp::fhe {

/// Per-evaluation statistics: the paper's latency model is
/// "ct-ct multiplications (with relinearization + rescale) dominate", so the
/// counters here drive both wall-clock measurement and depth verification.
///
/// The `ladder_*` / `*_saved` fields compare the executed schedule against
/// the pure power-ladder baseline for the same polynomials: when the BSGS
/// strategy runs they quantify the baby-step/giant-step savings; under the
/// ladder strategy the savings are zero by definition.
struct EvalStats {
  int ct_mults = 0;
  int relins = 0;
  int rescales = 0;
  int plain_mults = 0;
  int levels_consumed = 0;
  double wall_ms = 0.0;
  int ladder_ct_mults = 0;  ///< what the pure ladder schedule would have cost
  int ct_mults_saved = 0;   ///< ladder_ct_mults - executed ct_mults
  int relins_saved = 0;     ///< every saved ct mult also saves one relin...
  int rescales_saved = 0;   ///< ...and one rescale
  /// Multiplications whose relinearization was deferred by the lazy-relin
  /// path (3-part accumulation, one relin per join): `relins` counts only
  /// the relinearizations actually performed, so under lazy relin
  /// relins <= ct_mults <= relins + relins_deferred.
  int relins_deferred = 0;
};

/// Memoized power cache for one evaluation input: x^e is built on demand via
/// the depth-optimal balanced split (e = a + b with a the largest power of
/// two below e), so x^e always lands at level x.level() - ceil(log2 e).
///
/// A basis is reusable: every eval_* call that receives the same basis
/// (same input ciphertext) reuses the cached powers instead of recomputing
/// x, x^2, x^4, ... — this is what makes repeated PAF-ReLU / max calls on
/// one input, and ladder-vs-BSGS comparisons, cheap.
class PowerBasis {
 public:
  PowerBasis() = default;
  PowerBasis(const CkksContext& ctx, const KSwitchKey& relin, const Ciphertext& x) {
    reset(ctx, relin, x);
  }

  bool initialized() const { return ctx_ != nullptr; }
  /// Drops all cached powers and re-seeds the basis with a new input.
  void reset(const CkksContext& ctx, const KSwitchKey& relin, const Ciphertext& x);

  /// The basis input x (= power(1)).
  const Ciphertext& x() const { return pow_.at(1); }

  /// x^e (e >= 1), computing and caching any missing intermediate powers.
  const Ciphertext& power(Evaluator& ev, int e, EvalStats* stats = nullptr);

  bool has(int e) const { return pow_.count(e) != 0; }
  /// Exponents currently cached (always includes 1). Used by the evaluation
  /// planner so already-paid-for powers count as free.
  std::vector<int> cached_exponents() const;
  /// Total ct-ct multiplications spent building this basis so far.
  int mults_spent() const { return mults_spent_; }

 private:
  const CkksContext* ctx_ = nullptr;
  const KSwitchKey* relin_ = nullptr;
  std::map<int, Ciphertext> pow_;
  int mults_spent_ = 0;
};

/// Evaluates polynomials / composite PAFs on ciphertexts.
///
/// Two schedules are available behind `Strategy`:
///  - `Ladder`: the balanced double-and-add ladder; a degree-n stage consumes
///    exactly ceil(log2(n+1)) levels (Appendix C of the paper) and O(n)
///    ct-ct multiplications.
///  - `BSGS`: budget-aware baby-step/giant-step. Each subtree of the ladder
///    recursion is replaced by a k-block Paterson-Stockmeyer decomposition
///    (baby powers x..x^{k-1}, giant steps x^k, x^2k, ...) whenever the plan
///    fits the ladder's level budget with strictly fewer ct-ct mults, so it
///    consumes the same number of levels and never more multiplications —
///    O(sqrt n) on the depth-slack portions that dominate for degree >= 8.
///
/// Either way, term combination encodes each coefficient at the scale that
/// lands every term on one common (level, scale) pair, so additions are
/// exact.
class PafEvaluator {
 public:
  enum class Strategy { Ladder, BSGS };

  PafEvaluator(const CkksContext& ctx, const Encoder& encoder, const KSwitchKey& relin_key,
               Strategy strategy = Strategy::BSGS)
      : ctx_(&ctx), encoder_(&encoder), relin_(&relin_key), strategy_(strategy) {}

  Strategy strategy() const { return strategy_; }
  void set_strategy(Strategy s) { strategy_ = s; }

  /// Lazy relinearization (default on): ct-ct products inside a window stay
  /// 3-part, block sums accumulate via the evaluator's 3-part-aware
  /// `add_inplace`, and one relinearization is paid per giant-step join (and
  /// once at the end) instead of one per multiplication. Turn off to get
  /// the eager schedule (one relin per ct-ct mult), e.g. for comparisons.
  bool lazy_relin() const { return lazy_relin_; }
  void set_lazy_relin(bool lazy) { lazy_relin_ = lazy; }

  /// p(x) for a general dense polynomial (degree >= 1).
  Ciphertext eval_poly(Evaluator& ev, const Ciphertext& x, const approx::Polynomial& p,
                       EvalStats* stats = nullptr) const;

  /// Same, reusing (and extending) a caller-held power basis for x.
  Ciphertext eval_poly(Evaluator& ev, PowerBasis& basis, const approx::Polynomial& p,
                       EvalStats* stats = nullptr) const;

  /// Composite PAF evaluation, stage by stage.
  Ciphertext eval_composite(Evaluator& ev, const Ciphertext& x,
                            const approx::CompositePaf& paf,
                            EvalStats* stats = nullptr) const;

  /// Same, reusing a caller-held basis for the first stage's input (later
  /// stages consume fresh intermediate ciphertexts and build their own).
  Ciphertext eval_composite(Evaluator& ev, PowerBasis& basis,
                            const approx::CompositePaf& paf,
                            EvalStats* stats = nullptr) const;

  /// relu(x) ≈ 0.5 x (1 + paf(x / input_scale)) — the Static-Scaling
  /// deployment form (paper §4.5): `input_scale` is the frozen running max.
  ///
  /// `basis_cache`, when given, carries the scaled input's power basis for
  /// the *first stage* across repeated calls (x, x^2, x^4, ... built once;
  /// later stages consume fresh intermediates and still rebuild theirs).
  /// Contract: an initialized cache must come from a previous call with the
  /// SAME ciphertext and input_scale — the scaled input is not recomputed on
  /// reuse, so a mismatched cache silently evaluates the wrong input. A
  /// level mismatch is caught, content mismatches are the caller's duty.
  Ciphertext relu(Evaluator& ev, const Ciphertext& x, const approx::CompositePaf& paf,
                  double input_scale, EvalStats* stats = nullptr,
                  PowerBasis* basis_cache = nullptr) const;

  /// max(a,b) ≈ 0.5 (a + b) + 0.5 (a-b) paf((a-b)/input_scale).
  Ciphertext max(Evaluator& ev, const Ciphertext& a, const Ciphertext& b,
                 const approx::CompositePaf& paf, double input_scale,
                 EvalStats* stats = nullptr, PowerBasis* basis_cache = nullptr) const;

  /// Multiplication depth eval_poly consumes for `p` (both strategies consume
  /// exactly the ladder bound ceil(log2(deg+1))).
  static int mult_depth(const approx::Polynomial& p);

 private:
  /// (factor * ct) moved to `target_level` with scale exactly `target_scale`
  /// (one plaintext multiplication + rescale).
  Ciphertext scaled_to(Evaluator& ev, const Ciphertext& ct, double factor,
                       int target_level, double target_scale) const;

  const CkksContext* ctx_;
  const Encoder* encoder_;
  const KSwitchKey* relin_;
  Strategy strategy_;
  bool lazy_relin_ = true;
};

}  // namespace sp::fhe
