#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "approx/composite.h"
#include "fhe/evaluator.h"

namespace sp::fhe {

/// Per-evaluation statistics: the paper's latency model is
/// "ct-ct multiplications (with relinearization + rescale) dominate", so the
/// counters here drive both wall-clock measurement and depth verification.
///
/// The `ladder_*` / `*_saved` fields compare the executed schedule against
/// the pure power-ladder baseline for the same polynomials: when the BSGS
/// strategy runs they quantify the baby-step/giant-step savings; under the
/// ladder strategy the savings are zero by definition.
struct EvalStats {
  int ct_mults = 0;
  int relins = 0;
  int rescales = 0;
  int plain_mults = 0;
  int levels_consumed = 0;
  double wall_ms = 0.0;
  int ladder_ct_mults = 0;  ///< what the pure ladder schedule would have cost
  int ct_mults_saved = 0;   ///< ladder_ct_mults - executed ct_mults
  int relins_saved = 0;     ///< every saved ct mult also saves one relin...
  int rescales_saved = 0;   ///< ...and one rescale
  /// Multiplications whose relinearization was deferred by the lazy-relin
  /// path (3-part accumulation, one relin per join): `relins` counts only
  /// the relinearizations actually performed, so under lazy relin
  /// relins <= ct_mults <= relins + relins_deferred.
  int relins_deferred = 0;

  /// Amortized per-input view of one evaluation that served a slot-packed
  /// batch: every figure divides by the batch size, because a packed
  /// ciphertext pays each homomorphic op once for all B requests.
  struct PerInput {
    double ct_mults = 0.0;
    double relins = 0.0;
    double rescales = 0.0;
    double plain_mults = 0.0;
    double wall_ms = 0.0;
  };

  /// @brief Divides the executed counts by `batch_size` packed inputs —
  /// the latency-vs-throughput figure batching benchmarks report.
  /// @param batch_size  requests packed in the evaluated ciphertext (>= 1)
  /// @return per-input ct-mult/relin/rescale/plain-mult counts and wall time
  PerInput per_input(int batch_size) const {
    const double b = batch_size < 1 ? 1.0 : static_cast<double>(batch_size);
    PerInput out;
    out.ct_mults = ct_mults / b;
    out.relins = relins / b;
    out.rescales = rescales / b;
    out.plain_mults = plain_mults / b;
    out.wall_ms = wall_ms / b;
    return out;
  }
};

/// Planner-side prediction of one evaluation schedule, produced without
/// touching any ciphertext. `ct_mults` and `levels` are exact — they come
/// from the same pure cost model the executor mirrors operation for
/// operation (the planner==measured cross-check in tests/test_poly_eval.cpp
/// pins this). `relins`/`rescales` are the eager upper bound (lazy
/// relinearization executes fewer); `plain_mults` counts the coefficient
/// folds (one per nonzero non-constant coefficient), a close estimate.
/// `smartpaf::Planner` weighs these counts with a measured `CostModel`.
struct SchedulePrediction {
  int ct_mults = 0;
  int relins = 0;      ///< eager bound; under lazy relin, executed <= this
  int rescales = 0;    ///< eager bound, same as relins
  int plain_mults = 0; ///< coefficient-fold estimate
  int levels = 0;      ///< exact multiplication depth consumed

  SchedulePrediction& operator+=(const SchedulePrediction& o) {
    ct_mults += o.ct_mults;
    relins += o.relins;
    rescales += o.rescales;
    plain_mults += o.plain_mults;
    levels += o.levels;
    return *this;
  }
};

/// Memoized power cache for one evaluation input: x^e is built on demand via
/// the depth-optimal balanced split (e = a + b with a the largest power of
/// two below e), so x^e always lands at level x.level() - ceil(log2 e).
///
/// A basis is reusable: every eval_* call that receives the same basis
/// (same input ciphertext) reuses the cached powers instead of recomputing
/// x, x^2, x^4, ... — this is what makes repeated PAF-ReLU / max calls on
/// one input, and ladder-vs-BSGS comparisons, cheap.
class PowerBasis {
 public:
  PowerBasis() = default;

  /// @brief Seeds the basis with input `x` (equivalent to default-construct
  /// + reset()).
  /// @param ctx    CKKS context (must outlive the basis)
  /// @param relin  relinearization key used when building powers
  /// @param x      the evaluation input; cached as power(1)
  PowerBasis(const CkksContext& ctx, const KSwitchKey& relin, const Ciphertext& x) {
    reset(ctx, relin, x);
  }

  /// @brief True once the basis has been seeded with an input.
  bool initialized() const { return ctx_ != nullptr; }

  /// @brief Drops all cached powers and re-seeds the basis with a new input.
  /// @param ctx    CKKS context
  /// @param relin  relinearization key
  /// @param x      new evaluation input
  void reset(const CkksContext& ctx, const KSwitchKey& relin, const Ciphertext& x);

  /// @brief The basis input x (= power(1)).
  const Ciphertext& x() const { return pow_.at(1); }

  /// @brief x^e, computing and caching any missing intermediate powers.
  /// @param ev     evaluator to run the multiplications on
  /// @param e      exponent (>= 1)
  /// @param stats  optional tally for the ct-ct mults/relins/rescales spent
  /// @return cached ciphertext at level x.level() - ceil(log2 e)
  const Ciphertext& power(Evaluator& ev, int e, EvalStats* stats = nullptr);

  /// @brief Whether x^e is already cached (no cost to fetch).
  bool has(int e) const { return pow_.count(e) != 0; }

  /// @brief Exponents currently cached (always includes 1). Used by the
  /// evaluation planner so already-paid-for powers count as free.
  std::vector<int> cached_exponents() const;

  /// @brief Total ct-ct multiplications spent building this basis so far.
  int mults_spent() const { return mults_spent_; }

 private:
  const CkksContext* ctx_ = nullptr;
  const KSwitchKey* relin_ = nullptr;
  std::map<int, Ciphertext> pow_;
  int mults_spent_ = 0;
};

/// Per-stage evaluation cache for one composite-PAF input: stage i keeps the
/// PowerBasis of its intermediate input (x_i, x_i^2, x_i^4, ...) plus a memo
/// of the stage output, fingerprinted by the stage's coefficients. The
/// single-PowerBasis `basis_cache` of relu()/max() only covers the FIRST
/// composite stage; this cache extends the reuse to every stage, keyed on
/// the intermediate ciphertexts, so repeat-on-same-input evaluation is
/// nearly mult-free (only the final ReLU/max product remains).
///
/// Contract (same as PowerBasis reuse): an initialized cache must come from
/// a previous evaluation of the SAME input ciphertext. Level mismatches are
/// caught; content equality is the caller's duty. Coefficient changes are
/// handled: a stage whose coefficients no longer match the cached
/// fingerprint re-evaluates on its cached powers, and every later stage is
/// re-seeded (their intermediates changed) — so the Coefficient-Tuning loop
/// (same input, retrained coefficients) still keeps the power ladders of the
/// unchanged prefix.
class CompositeBasis {
 public:
  /// @brief True once any stage has been seeded by an evaluation.
  bool initialized() const { return !stages_.empty(); }
  /// @brief Drops every cached basis and output (ready for a new input).
  void clear() { stages_.clear(); }
  /// @brief Stages currently carrying cache state.
  std::size_t stage_count() const { return stages_.size(); }
  /// @brief Power basis of stage `i`'s input (grows the cache as needed).
  PowerBasis& stage_basis(std::size_t i) {
    if (stages_.size() <= i) stages_.resize(i + 1);
    return stages_[i].basis;
  }

 private:
  struct StageCache {
    PowerBasis basis;
    std::optional<Ciphertext> output;  ///< memoized stage output
    std::uint64_t coeff_hash = 0;      ///< coefficients the output is valid for
  };
  std::vector<StageCache> stages_;
  friend class PafEvaluator;
};

/// Evaluates polynomials / composite PAFs on ciphertexts.
///
/// Two schedules are available behind `Strategy`:
///  - `Ladder`: the balanced double-and-add ladder; a degree-n stage consumes
///    exactly ceil(log2(n+1)) levels (Appendix C of the paper) and O(n)
///    ct-ct multiplications.
///  - `BSGS`: budget-aware baby-step/giant-step. Each subtree of the ladder
///    recursion is replaced by a k-block Paterson-Stockmeyer decomposition
///    (baby powers x..x^{k-1}, giant steps x^k, x^2k, ...) whenever the plan
///    fits the ladder's level budget with strictly fewer ct-ct mults, so it
///    consumes the same number of levels and never more multiplications —
///    O(sqrt n) on the depth-slack portions that dominate for degree >= 8.
///
/// Either way, term combination encodes each coefficient at the scale that
/// lands every term on one common (level, scale) pair, so additions are
/// exact.
class PafEvaluator {
 public:
  enum class Strategy { Ladder, BSGS };

  /// @brief Binds the evaluator to its context, encoder and relin key.
  /// @param ctx        CKKS context (must outlive the evaluator)
  /// @param encoder    encoder used for coefficient plaintexts
  /// @param relin_key  relinearization key for ct-ct products
  /// @param strategy   initial schedule (BSGS by default; see class docs)
  PafEvaluator(const CkksContext& ctx, const Encoder& encoder, const KSwitchKey& relin_key,
               Strategy strategy = Strategy::BSGS)
      : ctx_(&ctx), encoder_(&encoder), relin_(&relin_key), strategy_(strategy) {}

  /// @brief Currently selected evaluation schedule.
  Strategy strategy() const { return strategy_; }
  /// @brief Switches between the Ladder and BSGS schedules.
  void set_strategy(Strategy s) { strategy_ = s; }

  /// @brief Whether lazy relinearization is on (default on): ct-ct products
  /// inside a window stay 3-part, block sums accumulate via the evaluator's
  /// 3-part-aware add_inplace(), and one relinearization is paid per
  /// giant-step join (and once at the end) instead of one per
  /// multiplication.
  bool lazy_relin() const { return lazy_relin_; }
  /// @brief Toggles lazy relinearization. Turn off to get the eager
  /// schedule (one relin per ct-ct mult), e.g. for comparisons.
  void set_lazy_relin(bool lazy) { lazy_relin_ = lazy; }

  /// @brief p(x) for a general dense polynomial (degree >= 1).
  /// @param ev     evaluator to run on
  /// @param x      input ciphertext
  /// @param p      dense coefficient polynomial
  /// @param stats  optional op/level/latency tally for this evaluation
  /// @return p(x) at level x.level() - mult_depth(p), scale ~Delta
  Ciphertext eval_poly(Evaluator& ev, const Ciphertext& x, const approx::Polynomial& p,
                       EvalStats* stats = nullptr) const;

  /// @brief Same, reusing (and extending) a caller-held power basis for x.
  /// @param basis  initialized basis whose x() is the evaluation input;
  ///               powers already cached count as free for the planner
  Ciphertext eval_poly(Evaluator& ev, PowerBasis& basis, const approx::Polynomial& p,
                       EvalStats* stats = nullptr) const;

  /// @brief Composite PAF evaluation, stage by stage.
  /// @param ev     evaluator to run on
  /// @param x      input ciphertext
  /// @param paf    stage chain, applied left-to-right
  /// @param stats  optional tally accumulated across all stages
  Ciphertext eval_composite(Evaluator& ev, const Ciphertext& x,
                            const approx::CompositePaf& paf,
                            EvalStats* stats = nullptr) const;

  /// @brief Same, reusing a caller-held basis for the first stage's input
  /// (later stages consume fresh intermediate ciphertexts and build their
  /// own).
  Ciphertext eval_composite(Evaluator& ev, PowerBasis& basis,
                            const approx::CompositePaf& paf,
                            EvalStats* stats = nullptr) const;

  /// @brief Composite evaluation through a per-stage CompositeBasis cache:
  /// every stage's power basis AND output are cached, so a repeat call on
  /// the same input (the CompositeBasis contract) costs zero ct-ct mults,
  /// and a call with retrained coefficients reuses the cached powers.
  /// @param x      evaluation input; ignored (beyond a level check) once the
  ///               cache is initialized
  /// @param cache  per-stage cache; seeded on first use
  Ciphertext eval_composite(Evaluator& ev, const Ciphertext& x,
                            const approx::CompositePaf& paf, CompositeBasis& cache,
                            EvalStats* stats = nullptr) const;

  /// @brief relu(x) ≈ 0.5 x (1 + paf(x / input_scale)) — the Static-Scaling
  /// deployment form (paper §4.5).
  ///
  /// @param ev           evaluator to run on
  /// @param x            input ciphertext (pre-activation values)
  /// @param paf          sign-approximating composite PAF
  /// @param input_scale  the frozen running max; x is divided by it so the
  ///                     PAF sees values in its accurate range
  /// @param stats        optional op/level/latency tally
  /// @param basis_cache  when given, carries the scaled input's power basis
  ///     for the *first stage* across repeated calls (x, x^2, x^4, ...
  ///     built once; later stages consume fresh intermediates and still
  ///     rebuild theirs). Contract: an initialized cache must come from a
  ///     previous call with the SAME ciphertext and input_scale — the
  ///     scaled input is not recomputed on reuse, so a mismatched cache
  ///     silently evaluates the wrong input. A level mismatch is caught,
  ///     content mismatches are the caller's duty.
  /// @param composite_cache  when given, supersedes `basis_cache`: EVERY
  ///     composite stage's basis and output are cached (see CompositeBasis),
  ///     so a repeat call on the same (x, input_scale, pre_factor, paf)
  ///     pays only the final 0.5 x (1 + p) product — one ct-ct mult.
  /// @param pre_factor  scalar folded into the activation input: evaluates
  ///     the PAF-ReLU of (pre_factor * x) at zero extra cost (the factor
  ///     rides the two plaintext multiplications the envelope already pays).
  ///     This is how the pipeline planner folds scalar linear stages into
  ///     the activation (RescalePolicy::FoldScalars).
  /// @return the PAF-ReLU of every slot, paf.mult_depth() + 2 levels below x
  Ciphertext relu(Evaluator& ev, const Ciphertext& x, const approx::CompositePaf& paf,
                  double input_scale, EvalStats* stats = nullptr,
                  PowerBasis* basis_cache = nullptr,
                  CompositeBasis* composite_cache = nullptr,
                  double pre_factor = 1.0) const;

  /// @brief max(a,b) ≈ 0.5 (a + b) + 0.5 (a-b) paf((a-b)/input_scale).
  /// @param a            first operand
  /// @param b            second operand (same level/scale as `a`)
  /// @param paf          sign-approximating composite PAF
  /// @param input_scale  frozen bound on |a-b|
  /// @param stats        optional op/level/latency tally
  /// @param basis_cache  same contract as relu(): must come from a previous
  ///                     call with the same (a, b, input_scale)
  /// @param composite_cache  supersedes `basis_cache`; caches every
  ///                     composite stage (same contract as relu())
  /// @param pre_factor  scalar folded into BOTH operands: computes
  ///                     max(pre_factor * a, pre_factor * b) at zero extra
  ///                     cost. Only meaningful when a and b are both raw
  ///                     (unscaled) — the pipeline planner uses this for a
  ///                     single pairwise fold (pool window 2), never inside
  ///                     longer tournaments whose running operand already
  ///                     carries the factor.
  Ciphertext max(Evaluator& ev, const Ciphertext& a, const Ciphertext& b,
                 const approx::CompositePaf& paf, double input_scale,
                 EvalStats* stats = nullptr, PowerBasis* basis_cache = nullptr,
                 CompositeBasis* composite_cache = nullptr,
                 double pre_factor = 1.0) const;

  /// @brief Multiplication depth eval_poly consumes for `p` (both
  /// strategies consume exactly the ladder bound ceil(log2(deg+1))).
  static int mult_depth(const approx::Polynomial& p);

  /// @brief Predicts the schedule eval_poly would execute for `p` under
  /// strategy `s` with a fresh basis, without touching ciphertexts.
  /// `ct_mults` and `levels` are exact (the prediction runs the same pure
  /// planner the executor mirrors op-for-op); relins/rescales are the eager
  /// upper bound. The BSGS prediction uses the depth budget eval_poly grants
  /// itself (the ladder depth), so it is parameter-set independent.
  static SchedulePrediction predict_poly(const approx::Polynomial& p, Strategy s);

  /// @brief Stage-summed prediction for a composite PAF (each stage gets a
  /// fresh intermediate basis, mirroring eval_composite).
  static SchedulePrediction predict_composite(const approx::CompositePaf& paf,
                                              Strategy s);

 private:
  /// (factor * ct) moved to `target_level` with scale exactly `target_scale`
  /// (one plaintext multiplication + rescale).
  Ciphertext scaled_to(Evaluator& ev, const Ciphertext& ct, double factor,
                       int target_level, double target_scale) const;

  const CkksContext* ctx_;
  const Encoder* encoder_;
  const KSwitchKey* relin_;
  Strategy strategy_;
  bool lazy_relin_ = true;
};

}  // namespace sp::fhe
