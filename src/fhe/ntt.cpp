#include "fhe/ntt.h"

#include "common/check.h"
#include "fhe/primes.h"

namespace sp::fhe {
namespace {

std::size_t bit_reverse(std::size_t v, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

NttTables::NttTables(std::size_t n, Modulus mod) : n_(n), mod_(mod) {
  // n = 1 and n = 2 are degenerate but valid negacyclic rings (the butterfly
  // loops simply run zero / one stage); they matter for edge-case coverage.
  sp::check(n >= 1 && (n & (n - 1)) == 0, "NttTables: n must be a power of two");
  log_n_ = 0;
  while ((1ULL << log_n_) < n) ++log_n_;

  const u64 q = mod_.value();
  const u64 psi = find_primitive_root(q, 2 * n);
  const u64 psi_inv = mod_.inv(psi);

  roots_.resize(n);
  roots_shoup_.resize(n);
  inv_roots_.resize(n);
  inv_roots_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 e = static_cast<u64>(bit_reverse(i, log_n_));
    roots_[i] = mod_.pow(psi, e);
    roots_shoup_[i] = shoup_precompute(roots_[i], q);
    inv_roots_[i] = mod_.pow(psi_inv, e);
    inv_roots_shoup_[i] = shoup_precompute(inv_roots_[i], q);
  }
  n_inv_ = mod_.inv(static_cast<u64>(n % q));
  n_inv_shoup_ = shoup_precompute(n_inv_, q);
}

void NttTables::forward(u64* a) const {
  const u64 q = mod_.value();
  const u64 two_q = 2 * q;
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const u64 w = roots_[m + i];
      const u64 ws = roots_shoup_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        // Harvey butterfly: values stay < 4q.
        u64 x = a[j];
        if (x >= two_q) x -= two_q;
        const u64 v = mul_shoup_lazy(a[j + t], w, ws, q);  // < 2q
        a[j] = x + v;
        a[j + t] = x + two_q - v;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    u64 x = a[i];
    if (x >= two_q) x -= two_q;
    if (x >= q) x -= q;
    a[i] = x;
  }
}

void NttTables::inverse(u64* a) const {
  const u64 q = mod_.value();
  const u64 two_q = 2 * q;
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 w = inv_roots_[h + i];
      const u64 ws = inv_roots_shoup_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        // Gentleman-Sande butterfly with values < 2q.
        const u64 x = a[j];
        const u64 y = a[j + t];
        u64 u = x + y;
        if (u >= two_q) u -= two_q;
        a[j] = u;
        a[j + t] = mul_shoup_lazy(x + two_q - y, w, ws, q);  // < 2q
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    u64 x = mul_shoup_lazy(a[i], n_inv_, n_inv_shoup_, q);
    if (x >= q) x -= q;
    a[i] = x;
  }
}

}  // namespace sp::fhe
