#include "fhe/ntt.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "fhe/primes.h"
#include "fhe/simd/simd.h"

namespace sp::fhe {
namespace {

std::size_t bit_reverse(std::size_t v, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

NttTables::NttTables(std::size_t n, Modulus mod) : n_(n), mod_(mod) {
  // n = 1 and n = 2 are degenerate but valid negacyclic rings (the butterfly
  // loops simply run zero / one stage); they matter for edge-case coverage.
  sp::check(n >= 1 && (n & (n - 1)) == 0, "NttTables: n must be a power of two");
  log_n_ = 0;
  while ((1ULL << log_n_) < n) ++log_n_;

  const u64 q = mod_.value();
  const u64 psi = find_primitive_root(q, 2 * n);
  const u64 psi_inv = mod_.inv(psi);

  roots_.resize(n);
  roots_shoup_.resize(n);
  inv_roots_.resize(n);
  inv_roots_shoup_.resize(n);
  // psi^i by iterated multiplication — O(n) multiplies instead of the
  // O(n log n) of a per-index square-and-multiply — scattered into the
  // bit-reversed slots. Every product is fully reduced, so the values match
  // mod_.pow(psi, e) exactly.
  std::vector<u64> pw(n), pwi(n);
  pw[0] = 1;
  pwi[0] = 1;
  for (std::size_t i = 1; i < n; ++i) {
    pw[i] = mod_.mul(pw[i - 1], psi);
    pwi[i] = mod_.mul(pwi[i - 1], psi_inv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t e = bit_reverse(i, log_n_);
    roots_[i] = pw[e];
    roots_shoup_[i] = shoup_precompute(roots_[i], q);
    inv_roots_[i] = pwi[e];
    inv_roots_shoup_[i] = shoup_precompute(inv_roots_[i], q);
  }
  n_inv_ = mod_.inv(static_cast<u64>(n % q));
  n_inv_shoup_ = shoup_precompute(n_inv_, q);
}

void NttTables::forward_stage_part(u64* a, int s, std::size_t b, std::size_t off,
                                   std::size_t len) const {
  const std::size_t m = static_cast<std::size_t>(1) << s;
  const std::size_t t = n_ >> (s + 1);
  u64* x = a + b * 2 * t + off;
  simd::kernels().fwd_butterfly(x, x + t, len, roots_[m + b], roots_shoup_[m + b],
                                mod_.value());
}

void NttTables::forward_tail(u64* a_sub, std::size_t sub, std::size_t split) const {
  const std::size_t L = n_ / split;
  const u64 q = mod_.value();
  const simd::Kernels& k = simd::kernels();
  // Local stage with ml blocks is global stage with split*ml blocks; the
  // twiddles of sub-transform `sub` sit contiguously at ml*(split+sub).
  std::size_t tl = L >> 1;
  for (std::size_t ml = 1; ml < L; ml <<= 1) {
    const std::size_t base = ml * (split + sub);
    k.fwd_stage(a_sub, tl, ml, roots_.data() + base, roots_shoup_.data() + base, q);
    tl >>= 1;
  }
  k.reduce_4q(a_sub, L, q);
}

void NttTables::inverse_head(u64* a_sub, std::size_t sub, std::size_t split) const {
  const std::size_t L = n_ / split;
  const u64 q = mod_.value();
  const simd::Kernels& k = simd::kernels();
  std::size_t tl = 1;
  for (std::size_t ml = L; ml > 1; ml >>= 1) {
    const std::size_t h = ml >> 1;
    const std::size_t base = h * (split + sub);
    k.inv_stage(a_sub, tl, h, inv_roots_.data() + base, inv_roots_shoup_.data() + base,
                q);
    tl <<= 1;
  }
}

void NttTables::inverse_stage_part(u64* a, int s, std::size_t b, std::size_t off,
                                   std::size_t len) const {
  const std::size_t h = static_cast<std::size_t>(1) << (s - 1);
  const std::size_t t = n_ >> s;
  u64* x = a + b * 2 * t + off;
  simd::kernels().inv_butterfly(x, x + t, len, inv_roots_[h + b],
                                inv_roots_shoup_[h + b], mod_.value());
}

void NttTables::inverse_scale(u64* a, std::size_t len) const {
  simd::kernels().mul_shoup(a, len, n_inv_, n_inv_shoup_, mod_.value());
}

void NttTables::forward(u64* a) const { forward_tail(a, 0, 1); }

void NttTables::inverse(u64* a) const {
  inverse_head(a, 0, 1);
  inverse_scale(a, n_);
}

namespace {

/// Butterflies per phase task when a stage's blocks are tiled.
constexpr std::size_t kTile = 2048;
/// Smallest sub-transform worth splitting a row into: below this the
/// per-task and barrier overheads beat the parallelism.
constexpr std::size_t kMinSub = 512;

int log2_size(std::size_t v) {
  int s = 0;
  while ((static_cast<std::size_t>(1) << s) < v) ++s;
  return s;
}

/// Sub-row split factor: 1 when per-row parallelism already feeds the pool.
std::size_t pick_split(std::size_t rows, std::size_t n, int threads) {
  const std::size_t want = 2 * static_cast<std::size_t>(threads);
  if (threads <= 1 || rows >= want || n < 2 * kMinSub) return 1;
  std::size_t split = 1;
  while (rows * split < want && split < n / kMinSub) split <<= 1;
  return split;
}

std::size_t checked_common_n(const std::vector<NttJob>& jobs) {
  const std::size_t n = jobs[0].tables->n();
  for (const NttJob& j : jobs)
    sp::check(j.tables != nullptr && j.data != nullptr && j.tables->n() == n,
              "ntt batch: null job or mixed ring sizes");
  return n;
}

}  // namespace

void ntt_forward_batch(const std::vector<NttJob>& jobs) {
  const std::size_t R = jobs.size();
  if (R == 0) return;
  const std::size_t n = checked_common_n(jobs);
  const std::size_t split = pick_split(R, n, ThreadPool::global().threads());
  if (split == 1) {
    sp::parallel_for(0, R, [&](std::size_t i) { jobs[i].tables->forward(jobs[i].data); });
    return;
  }
  // Phase A: the first log2(split) stages; blocks (and tiles within a block)
  // are independent, with one barrier per stage.
  const int head_stages = log2_size(split);
  for (int s = 0; s < head_stages; ++s) {
    const std::size_t blocks = static_cast<std::size_t>(1) << s;
    const std::size_t t = n >> (s + 1);
    const std::size_t tiles = t >= kTile ? t / kTile : 1;
    const std::size_t len = t / tiles;
    sp::parallel_for(0, R * blocks * tiles, [&](std::size_t u) {
      const std::size_t r = u / (blocks * tiles);
      const std::size_t rem = u % (blocks * tiles);
      jobs[r].tables->forward_stage_part(jobs[r].data, s, rem / tiles,
                                         (rem % tiles) * len, len);
    });
  }
  // Phase B: rows x split independent sub-transforms (incl. final reduction).
  const std::size_t L = n / split;
  sp::parallel_for(0, R * split, [&](std::size_t u) {
    const std::size_t r = u / split;
    const std::size_t sub = u % split;
    jobs[r].tables->forward_tail(jobs[r].data + sub * L, sub, split);
  });
}

void ntt_inverse_batch(const std::vector<NttJob>& jobs) {
  const std::size_t R = jobs.size();
  if (R == 0) return;
  const std::size_t n = checked_common_n(jobs);
  const std::size_t split = pick_split(R, n, ThreadPool::global().threads());
  if (split == 1) {
    sp::parallel_for(0, R, [&](std::size_t i) { jobs[i].tables->inverse(jobs[i].data); });
    return;
  }
  // Phase A: rows x split independent inverse heads.
  const std::size_t L = n / split;
  sp::parallel_for(0, R * split, [&](std::size_t u) {
    const std::size_t r = u / split;
    const std::size_t sub = u % split;
    jobs[r].tables->inverse_head(jobs[r].data + sub * L, sub, split);
  });
  // Phase B: the log2(split) joining stages, largest block count first.
  for (int s = log2_size(split); s >= 1; --s) {
    const std::size_t blocks = static_cast<std::size_t>(1) << (s - 1);
    const std::size_t t = n >> s;
    const std::size_t tiles = t >= kTile ? t / kTile : 1;
    const std::size_t len = t / tiles;
    sp::parallel_for(0, R * blocks * tiles, [&](std::size_t u) {
      const std::size_t r = u / (blocks * tiles);
      const std::size_t rem = u % (blocks * tiles);
      jobs[r].tables->inverse_stage_part(jobs[r].data, s, rem / tiles,
                                         (rem % tiles) * len, len);
    });
  }
  // Phase C: the 1/n scaling, tiled.
  const std::size_t tiles = n >= kTile ? n / kTile : 1;
  const std::size_t len = n / tiles;
  sp::parallel_for(0, R * tiles, [&](std::size_t u) {
    const std::size_t r = u / tiles;
    jobs[r].tables->inverse_scale(jobs[r].data + (u % tiles) * len, len);
  });
}

}  // namespace sp::fhe
