#pragma once

// minigtest: a single-header, GoogleTest-source-compatible shim covering the
// subset of the gtest API this repository's test suites use. It exists so the
// CTest suites still build and run in offline containers where neither a
// system GoogleTest nor FetchContent is available. Resolution order is
// system gtest -> FetchContent -> this shim (see the top-level CMakeLists).
//
// Supported surface: TEST / TEST_F / TEST_P, fixtures with SetUp/TearDown and
// static SetUpTestSuite/TearDownTestSuite, TestWithParam / WithParamInterface
// with INSTANTIATE_TEST_SUITE_P over Values/ValuesIn (optional name
// generator), the EXPECT_/ASSERT_ comparison, boolean, floating-point and
// exception macros with message streaming, InitGoogleTest and RUN_ALL_TESTS.

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Message {
 public:
  template <typename T>
  Message& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }
  std::string str() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

namespace internal {

struct TestState {
  int run = 0;
  int failed_tests = 0;
  bool current_failed = false;
};
inline TestState& state() {
  static TestState s;
  return s;
}

inline void record_failure(const char* file, int line, const std::string& summary,
                           const std::string& user_message) {
  std::fprintf(stderr, "%s:%d: Failure\n%s\n", file, line, summary.c_str());
  if (!user_message.empty()) std::fprintf(stderr, "%s\n", user_message.c_str());
  state().current_failed = true;
}

/// Terminal object of every failing assertion: streamed user messages are
/// collected by Message and flushed when the AssertHelper is assigned.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary)
      : file_(file), line_(line), summary_(std::move(summary)) {}
  void operator=(const Message& message) const {
    record_failure(file_, line_, summary_, message.str());
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
};

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string print_value(const T& v) {
  if constexpr (IsStreamable<T>::value) {
    std::ostringstream ss;
    ss << v;
    return ss.str();
  } else {
    return "(unprintable value)";
  }
}

template <typename A, typename B>
std::string cmp_failure(const char* e1, const char* e2, const A& a, const B& b,
                        const char* op) {
  std::ostringstream ss;
  ss << "Expected: (" << e1 << ") " << op << " (" << e2 << "), actual: "
     << print_value(a) << " vs " << print_value(b);
  return ss.str();
}

// C++17 has no std::cmp_equal; widen by signedness so literal-vs-unsigned
// equality checks neither warn nor wrap (mirrors gtest's EqHelper).
template <typename A, typename B>
bool int_eq(A a, B b) {
  if constexpr (std::is_signed_v<A> == std::is_signed_v<B>) {
    return a == b;
  } else if constexpr (std::is_signed_v<A>) {
    return a >= 0 && static_cast<std::make_unsigned_t<A>>(a) == b;
  } else {
    return b >= 0 && a == static_cast<std::make_unsigned_t<B>>(b);
  }
}

template <typename A, typename B>
bool values_equal(const A& a, const B& b) {
  if constexpr (std::is_integral_v<A> && std::is_integral_v<B> &&
                !std::is_same_v<A, bool> && !std::is_same_v<B, bool>) {
    return int_eq(a, b);
  } else {
    return a == b;
  }
}

template <typename T>
bool almost_equal(T a, T b) {
  if (a == b) return true;
  const T diff = std::fabs(a - b);
  const T norm = std::max(std::fabs(a), std::fabs(b));
  // ~4 ULPs, the gtest default tolerance.
  return diff <= norm * std::numeric_limits<T>::epsilon() * 4;
}

}  // namespace internal

class Test {
 public:
  virtual ~Test() = default;
  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}
  void Run() {
    SetUp();
    TestBody();
    TearDown();
  }

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;
};

template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& p, std::size_t i) : param(p), index(i) {}
  T param;
  std::size_t index;
};

template <typename T>
class WithParamInterface {
 public:
  using ParamType = T;
  virtual ~WithParamInterface() = default;
  static const T& GetParam() { return *current_param(); }
  static const T*& current_param() {
    static const T* p = nullptr;
    return p;
  }
};

template <typename T>
class TestWithParam : public Test, public WithParamInterface<T> {};

namespace internal {

struct RegisteredTest {
  std::string suite;
  std::string name;
  std::function<Test*()> factory;
  void (*suite_setup)();
  void (*suite_teardown)();
};

inline std::vector<RegisteredTest>& registry() {
  static std::vector<RegisteredTest> tests;
  return tests;
}

/// Deferred expanders: parameterized suites expand their (pattern x
/// instantiation) cross product into registry() right before the run, so the
/// relative order of TEST_P and INSTANTIATE_TEST_SUITE_P does not matter.
inline std::vector<std::function<void()>>& param_expanders() {
  static std::vector<std::function<void()>> v;
  return v;
}

/// Derives from the fixture so protected SetUpTestSuite/TearDownTestSuite
/// statics are reachable (mirrors gtest's SuiteApiResolver).
template <typename Fixture>
struct SuiteApiResolver : Fixture {
  static void DoSetUpTestSuite() { Fixture::SetUpTestSuite(); }
  static void DoTearDownTestSuite() { Fixture::TearDownTestSuite(); }
};

template <typename Fixture>
bool register_test(const char* suite, const char* name) {
  registry().push_back({suite, name, [] { return new Fixture; },
                        &SuiteApiResolver<Fixture>::DoSetUpTestSuite,
                        &SuiteApiResolver<Fixture>::DoTearDownTestSuite});
  return true;
}

template <typename ParamType>
struct ParamSuiteRegistry {
  struct Pattern {
    std::string name;
    std::function<Test*()> factory;
    void (*suite_setup)();
    void (*suite_teardown)();
  };
  struct Instantiation {
    std::string prefix;
    std::vector<ParamType> values;
    std::function<std::string(const TestParamInfo<ParamType>&)> namer;
  };
  std::vector<Pattern> patterns;
  std::vector<Instantiation> instantiations;
  bool expander_registered = false;

  static ParamSuiteRegistry& for_suite(const std::string& suite) {
    static std::map<std::string, ParamSuiteRegistry> suites;
    return suites[suite];
  }

  static void ensure_expander(const std::string& suite) {
    ParamSuiteRegistry& self = for_suite(suite);
    if (self.expander_registered) return;
    self.expander_registered = true;
    param_expanders().push_back([suite] {
      ParamSuiteRegistry& reg = for_suite(suite);
      for (const Instantiation& inst : reg.instantiations) {
        // Stable storage for the params the factories point at.
        auto values = std::make_shared<std::vector<ParamType>>(inst.values);
        for (std::size_t i = 0; i < values->size(); ++i) {
          std::string label = inst.namer
                                  ? inst.namer(TestParamInfo<ParamType>((*values)[i], i))
                                  : std::to_string(i);
          for (const Pattern& pat : reg.patterns) {
            const ParamType* param = &(*values)[i];
            auto factory = pat.factory;
            registry().push_back(
                {inst.prefix + "/" + suite, pat.name + "/" + label,
                 [factory, param, values] {
                   WithParamInterface<ParamType>::current_param() = param;
                   return factory();
                 },
                 pat.suite_setup, pat.suite_teardown});
          }
        }
      }
    });
  }
};

template <typename Fixture>
bool register_test_p(const char* suite, const char* name) {
  using ParamType = typename Fixture::ParamType;
  auto& reg = ParamSuiteRegistry<ParamType>::for_suite(suite);
  reg.patterns.push_back({name, [] { return new Fixture; },
                          &SuiteApiResolver<Fixture>::DoSetUpTestSuite,
                          &SuiteApiResolver<Fixture>::DoTearDownTestSuite});
  ParamSuiteRegistry<ParamType>::ensure_expander(suite);
  return true;
}

template <typename... Args>
struct ValueList {
  std::tuple<Args...> values;
  template <typename T>
  std::vector<T> materialize() const {
    std::vector<T> out;
    std::apply([&out](const Args&... a) { (out.push_back(static_cast<T>(a)), ...); },
               values);
    return out;
  }
};

template <typename T>
struct ContainerValues {
  std::vector<T> stored;
  template <typename U>
  std::vector<U> materialize() const {
    return std::vector<U>(stored.begin(), stored.end());
  }
};

template <typename Suite, typename Generator>
bool add_instantiation(
    const char* prefix, const char* suite, const Generator& gen,
    std::function<std::string(const TestParamInfo<typename Suite::ParamType>&)>
        namer = nullptr) {
  using ParamType = typename Suite::ParamType;
  auto& reg = ParamSuiteRegistry<ParamType>::for_suite(suite);
  reg.instantiations.push_back(
      {prefix, gen.template materialize<ParamType>(), std::move(namer)});
  ParamSuiteRegistry<ParamType>::ensure_expander(suite);
  return true;
}

inline int run_all_tests() {
  for (auto& expand : param_expanders()) expand();
  param_expanders().clear();

  // Group by suite in first-seen order so each suite's static
  // SetUpTestSuite/TearDownTestSuite runs exactly once around its tests.
  std::vector<std::string> suite_order;
  std::map<std::string, std::vector<const RegisteredTest*>> by_suite;
  for (const RegisteredTest& t : registry()) {
    if (by_suite.find(t.suite) == by_suite.end()) suite_order.push_back(t.suite);
    by_suite[t.suite].push_back(&t);
  }

  TestState& st = state();
  for (const std::string& suite : suite_order) {
    const auto& tests = by_suite[suite];
    tests.front()->suite_setup();
    for (const RegisteredTest* t : tests) {
      st.current_failed = false;
      ++st.run;
      std::fprintf(stderr, "[ RUN      ] %s.%s\n", t->suite.c_str(), t->name.c_str());
      std::unique_ptr<Test> instance(t->factory());
      instance->Run();
      if (st.current_failed) {
        ++st.failed_tests;
        std::fprintf(stderr, "[  FAILED  ] %s.%s\n", t->suite.c_str(), t->name.c_str());
      } else {
        std::fprintf(stderr, "[       OK ] %s.%s\n", t->suite.c_str(), t->name.c_str());
      }
    }
    tests.front()->suite_teardown();
  }
  std::fprintf(stderr, "[==========] %d tests ran, %d failed.\n", st.run,
               st.failed_tests);
  return st.failed_tests == 0 ? 0 : 1;
}

}  // namespace internal

template <typename... Args>
internal::ValueList<Args...> Values(Args... args) {
  return {std::make_tuple(args...)};
}

template <typename Container>
auto ValuesIn(const Container& c) {
  using T = typename Container::value_type;
  return internal::ContainerValues<T>{std::vector<T>(std::begin(c), std::end(c))};
}

inline void InitGoogleTest(int* = nullptr, char** = nullptr) {}

}  // namespace testing

inline int RUN_ALL_TESTS() { return ::testing::internal::run_all_tests(); }

// ---------------------------------------------------------------------------
// Test declaration macros.
// ---------------------------------------------------------------------------

#define MG_CLASS_NAME_(suite, name) suite##_##name##_MgTest

#define MG_TEST_(suite, name, base, register_fn)                           \
  class MG_CLASS_NAME_(suite, name) : public base {                        \
    void TestBody() override;                                              \
  };                                                                       \
  static const bool mg_registered_##suite##_##name =                       \
      ::testing::internal::register_fn<MG_CLASS_NAME_(suite, name)>(#suite, \
                                                                    #name); \
  void MG_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MG_TEST_(suite, name, ::testing::Test, register_test)
#define TEST_F(fixture, name) MG_TEST_(fixture, name, fixture, register_test)
#define TEST_P(fixture, name) MG_TEST_(fixture, name, fixture, register_test_p)

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                     \
  static const bool mg_instantiated_##prefix##_##suite =                 \
      ::testing::internal::add_instantiation<suite>(#prefix, #suite, __VA_ARGS__)

// ---------------------------------------------------------------------------
// Assertion macros. Each expands to an if/else so a trailing `<< message`
// binds to the failure object; ASSERT_ variants return out of the test body.
// ---------------------------------------------------------------------------

#define MG_MESSAGE_(summary) \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, summary) = ::testing::Message()

#define MG_CHECK_(condition, summary) \
  if (condition)                      \
    ;                                 \
  else                                \
    MG_MESSAGE_(summary)

#define MG_CHECK_FATAL_(condition, summary) \
  if (condition)                            \
    ;                                       \
  else                                      \
    return MG_MESSAGE_(summary)

#define MG_CMP_(a, b, op, check)                                             \
  check((a)op(b), ::testing::internal::cmp_failure(#a, #b, (a), (b), #op))

#define EXPECT_TRUE(c) MG_CHECK_((c), "Expected " #c " to be true")
#define EXPECT_FALSE(c) MG_CHECK_(!(c), "Expected " #c " to be false")
#define ASSERT_TRUE(c) MG_CHECK_FATAL_((c), "Expected " #c " to be true")
#define ASSERT_FALSE(c) MG_CHECK_FATAL_(!(c), "Expected " #c " to be false")

#define EXPECT_EQ(a, b)                                           \
  MG_CHECK_(::testing::internal::values_equal((a), (b)),          \
            ::testing::internal::cmp_failure(#a, #b, (a), (b), "=="))
#define ASSERT_EQ(a, b)                                           \
  MG_CHECK_FATAL_(::testing::internal::values_equal((a), (b)),    \
                  ::testing::internal::cmp_failure(#a, #b, (a), (b), "=="))
#define EXPECT_NE(a, b)                                           \
  MG_CHECK_(!::testing::internal::values_equal((a), (b)),         \
            ::testing::internal::cmp_failure(#a, #b, (a), (b), "!="))
#define ASSERT_NE(a, b)                                           \
  MG_CHECK_FATAL_(!::testing::internal::values_equal((a), (b)),   \
                  ::testing::internal::cmp_failure(#a, #b, (a), (b), "!="))

#define EXPECT_LT(a, b) MG_CMP_(a, b, <, MG_CHECK_)
#define EXPECT_LE(a, b) MG_CMP_(a, b, <=, MG_CHECK_)
#define EXPECT_GT(a, b) MG_CMP_(a, b, >, MG_CHECK_)
#define EXPECT_GE(a, b) MG_CMP_(a, b, >=, MG_CHECK_)
#define ASSERT_LT(a, b) MG_CMP_(a, b, <, MG_CHECK_FATAL_)
#define ASSERT_LE(a, b) MG_CMP_(a, b, <=, MG_CHECK_FATAL_)
#define ASSERT_GT(a, b) MG_CMP_(a, b, >, MG_CHECK_FATAL_)
#define ASSERT_GE(a, b) MG_CMP_(a, b, >=, MG_CHECK_FATAL_)

#define EXPECT_NEAR(a, b, tol)                                        \
  MG_CHECK_(std::fabs((a) - (b)) <= (tol),                            \
            ::testing::internal::cmp_failure(#a, #b, (a), (b), "~="))
#define ASSERT_NEAR(a, b, tol)                                        \
  MG_CHECK_FATAL_(std::fabs((a) - (b)) <= (tol),                      \
                  ::testing::internal::cmp_failure(#a, #b, (a), (b), "~="))

#define EXPECT_DOUBLE_EQ(a, b)                                             \
  MG_CHECK_(::testing::internal::almost_equal<double>((a), (b)),           \
            ::testing::internal::cmp_failure(#a, #b, (a), (b), "=="))
#define EXPECT_FLOAT_EQ(a, b)                                              \
  MG_CHECK_(::testing::internal::almost_equal<float>((a), (b)),            \
            ::testing::internal::cmp_failure(#a, #b, (a), (b), "=="))

#define EXPECT_THROW(statement, expected_exception)                          \
  MG_CHECK_(([&]() -> bool {                                                 \
              try {                                                          \
                statement;                                                   \
              } catch (const expected_exception&) {                          \
                return true;                                                 \
              } catch (...) {                                                \
                return false;                                                \
              }                                                              \
              return false;                                                  \
            })(),                                                            \
            "Expected: " #statement " throws " #expected_exception)
#define EXPECT_NO_THROW(statement)                                           \
  MG_CHECK_(([&]() -> bool {                                                 \
              try {                                                          \
                statement;                                                   \
              } catch (...) {                                                \
                return false;                                                \
              }                                                              \
              return true;                                                   \
            })(),                                                            \
            "Expected: " #statement " does not throw")
