// minigtest runtime: the shim is header-only except for this gtest_main
// equivalent, so test targets link one object and get an entry point.
#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
